"""16x16 tiled sparse matrices — the TCU-SpMM data structure.

Section 4.2.4: TCU-SpMM transforms an input into CSR, partitions it into
16x16 submatrices, skips submatrices containing all zeros, and multiplies
the remaining tiles on the tensor cores.  :class:`TiledMatrix` stores only
the non-empty tiles; :func:`tile_pair_count` computes how many 16^3 MMA
issues a product needs, which is what the timing model charges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ReproError
from repro.tensor.coo import COOMatrix

TILE = 16


@dataclass(frozen=True)
class TiledMatrix:
    """Sparse matrix stored as non-empty 16x16 dense tiles.

    ``block_rows``/``block_cols`` give each stored tile's block
    coordinates; ``tiles`` is a (n_tiles, 16, 16) array of tile contents.
    """

    block_rows: np.ndarray
    block_cols: np.ndarray
    tiles: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self):
        if self.tiles.ndim != 3 or self.tiles.shape[1:] != (TILE, TILE):
            raise ReproError("tiles must be (n, 16, 16)")
        if not (self.block_rows.shape == self.block_cols.shape
                == (self.tiles.shape[0],)):
            raise ReproError("block coordinate arrays must match tile count")

    # -- constructors ----------------------------------------------------- #

    @staticmethod
    def from_coo(coo: COOMatrix, assume_canonical: bool = False) -> "TiledMatrix":
        """Partition COO triples into non-empty 16x16 tiles.

        ``assume_canonical`` skips the duplicate-summing sort when the
        caller guarantees unique coordinates (the direct-COO operand
        builder emits canonical triples, so the extra pass would be
        wasted on the hot path).
        """
        if not assume_canonical:
            coo = coo.sum_duplicates()
        n_rows, n_cols = coo.shape
        if coo.nnz == 0:
            return TiledMatrix(
                block_rows=np.array([], dtype=np.int64),
                block_cols=np.array([], dtype=np.int64),
                tiles=np.zeros((0, TILE, TILE)),
                shape=coo.shape,
            )
        block_r = coo.rows // TILE
        block_c = coo.cols // TILE
        blocks_per_row = -(-n_cols // TILE)
        keys = block_r * blocks_per_row + block_c
        unique_keys, tile_index = np.unique(keys, return_inverse=True)
        tiles = np.zeros((unique_keys.size, TILE, TILE), dtype=np.float64)
        # Coordinates are unique here (canonical input or post
        # sum_duplicates), so plain fancy-index assignment applies — much
        # faster than the np.add.at scatter it replaces.
        tiles[tile_index, coo.rows % TILE, coo.cols % TILE] = coo.vals
        return TiledMatrix(
            block_rows=unique_keys // blocks_per_row,
            block_cols=unique_keys % blocks_per_row,
            tiles=tiles,
            shape=coo.shape,
        )

    @staticmethod
    def from_dense(dense: np.ndarray) -> "TiledMatrix":
        return TiledMatrix.from_coo(COOMatrix.from_dense(dense))

    # -- properties ------------------------------------------------------- #

    @property
    def n_tiles(self) -> int:
        return int(self.tiles.shape[0])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.tiles))

    @property
    def tile_density(self) -> float:
        """Fraction of the full tile grid that is non-empty."""
        grid = (-(-self.shape[0] // TILE)) * (-(-self.shape[1] // TILE))
        return self.n_tiles / grid if grid else 0.0

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(
            (-(-self.shape[0] // TILE) * TILE, -(-self.shape[1] // TILE) * TILE)
        )
        for block_r, block_c, tile in zip(
            self.block_rows, self.block_cols, self.tiles
        ):
            r0, c0 = block_r * TILE, block_c * TILE
            dense[r0:r0 + TILE, c0:c0 + TILE] = tile
        return dense[: self.shape[0], : self.shape[1]]

    # -- products ---------------------------------------------------------- #

    def spmm(self, other: "TiledMatrix") -> tuple["TiledMatrix", int]:
        """Tile-level product; returns (result, number of MMA tile pairs).

        For every pair of tiles A[bi, bk] and B[bk, bj] sharing an inner
        block index, one 16x16x16 MMA accumulates into C[bi, bj] — tiles
        that are entirely zero never issue, which is the whole point of
        TCU-SpMM.
        """
        if self.shape[1] != other.shape[0]:
            raise ReproError(
                f"incompatible shapes {self.shape} @ {other.shape}"
            )
        by_inner: dict[int, list[int]] = {}
        for idx, block_r in enumerate(other.block_rows):
            by_inner.setdefault(int(block_r), []).append(idx)
        accumulators: dict[tuple[int, int], np.ndarray] = {}
        tile_pairs = 0
        for a_idx, block_k in enumerate(self.block_cols):
            matches = by_inner.get(int(block_k))
            if not matches:
                continue
            a_tile = self.tiles[a_idx]
            block_i = int(self.block_rows[a_idx])
            for b_idx in matches:
                block_j = int(other.block_cols[b_idx])
                tile_pairs += 1
                key = (block_i, block_j)
                accumulator = accumulators.get(key)
                if accumulator is None:
                    accumulator = np.zeros((TILE, TILE))
                    accumulators[key] = accumulator
                accumulator += a_tile @ other.tiles[b_idx]
        shape = (self.shape[0], other.shape[1])
        if not accumulators:
            empty = TiledMatrix(
                block_rows=np.array([], dtype=np.int64),
                block_cols=np.array([], dtype=np.int64),
                tiles=np.zeros((0, TILE, TILE)), shape=shape,
            )
            return empty, 0
        keys = sorted(accumulators)
        result = TiledMatrix(
            block_rows=np.array([k[0] for k in keys], dtype=np.int64),
            block_cols=np.array([k[1] for k in keys], dtype=np.int64),
            tiles=np.stack([accumulators[k] for k in keys]),
            shape=shape,
        )
        return result, tile_pairs


@dataclass(frozen=True)
class TileLayout:
    """Reusable tile structure for a family of same-sparsity matrices.

    ``BatchedGemm``'s SPARSE path multiplies one indicator structure by
    several value fills: every grid in the batch shares the COO
    coordinates and differs only in ``vals``.  Building a
    :class:`TiledMatrix` per grid re-derives block keys, uniques and
    within-tile offsets each time; a ``TileLayout`` derives them once
    from the coordinates, and :meth:`fill` then materializes each
    member of the batch with a single fancy-index assignment.
    """

    block_rows: np.ndarray
    block_cols: np.ndarray
    tile_index: np.ndarray
    within_rows: np.ndarray
    within_cols: np.ndarray
    shape: tuple[int, int]

    @staticmethod
    def from_coords(rows: np.ndarray, cols: np.ndarray,
                    shape: tuple[int, int]) -> "TileLayout":
        """Derive the tile structure from canonical (unique) coordinates."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.size == 0:
            empty = np.array([], dtype=np.int64)
            return TileLayout(empty, empty, empty, empty, empty, shape)
        blocks_per_row = -(-shape[1] // TILE)
        keys = (rows // TILE) * blocks_per_row + cols // TILE
        unique_keys, tile_index = np.unique(keys, return_inverse=True)
        return TileLayout(
            block_rows=unique_keys // blocks_per_row,
            block_cols=unique_keys % blocks_per_row,
            tile_index=tile_index,
            within_rows=rows % TILE,
            within_cols=cols % TILE,
            shape=shape,
        )

    @property
    def n_tiles(self) -> int:
        return int(self.block_rows.size)

    def fill(self, vals: np.ndarray) -> TiledMatrix:
        """One value assignment → a TiledMatrix sharing this structure.

        Cells whose value is zero stay stored (as explicit zeros inside
        their tile), so every fill of a layout has identical tile
        geometry — that is what makes the batch single-pass.
        """
        tiles = np.zeros((self.n_tiles, TILE, TILE), dtype=np.float64)
        if self.n_tiles:
            tiles[self.tile_index, self.within_rows, self.within_cols] = (
                np.asarray(vals, dtype=np.float64))
        return TiledMatrix(
            block_rows=self.block_rows,
            block_cols=self.block_cols,
            tiles=tiles,
            shape=self.shape,
        )


def tile_pair_count(a: TiledMatrix, b: TiledMatrix) -> int:
    """MMA issues of a @ b: sum over inner blocks of |A tiles| x |B tiles|."""
    if a.shape[1] != b.shape[0]:
        raise ReproError("incompatible shapes for tile_pair_count")
    a_counts = np.bincount(a.block_cols.astype(np.int64)) if a.n_tiles else np.array([0])
    b_counts = np.bincount(b.block_rows.astype(np.int64)) if b.n_tiles else np.array([0])
    width = max(a_counts.size, b_counts.size)
    a_padded = np.zeros(width, dtype=np.int64)
    b_padded = np.zeros(width, dtype=np.int64)
    a_padded[: a_counts.size] = a_counts
    b_padded[: b_counts.size] = b_counts
    return int(np.sum(a_padded * b_padded))


def count_nonempty_tiles(rows: np.ndarray, cols: np.ndarray) -> int:
    """Exact non-empty tile count from COO coordinates (no tile build)."""
    if rows.size == 0:
        return 0
    keys = (np.asarray(rows, dtype=np.int64) // TILE) * (1 << 32) + (
        np.asarray(cols, dtype=np.int64) // TILE
    )
    return int(np.unique(keys).size)


def estimate_nonempty_tiles(shape: tuple[int, int], nnz: int) -> float:
    """Expected non-empty tiles for ``nnz`` uniformly random coordinates.

    Used by the cost estimator when materializing coordinates would be
    too expensive: each of the G tiles is empty with probability
    (1 - 1/G)^nnz under uniform placement.
    """
    grid = (-(-shape[0] // TILE)) * (-(-shape[1] // TILE))
    if grid == 0 or nnz <= 0:
        return 0.0
    return grid * (1.0 - (1.0 - 1.0 / grid) ** nnz)


def estimate_tile_pairs(
    a_shape: tuple[int, int], a_nnz: int, b_shape: tuple[int, int], b_nnz: int
) -> float:
    """Expected MMA issues for a product of two uniform sparse matrices."""
    inner_blocks = -(-a_shape[1] // TILE)
    if inner_blocks == 0:
        return 0.0
    a_tiles = estimate_nonempty_tiles(a_shape, a_nnz)
    b_tiles = estimate_nonempty_tiles(b_shape, b_nnz)
    # Per inner block: (a_tiles / inner) x (b_tiles / inner), summed over
    # all inner blocks.
    return a_tiles * b_tiles / inner_blocks

"""Workload drivers: SSB, PageRank, entity matching, matmul query."""

from repro.workloads.em_blocking import (
    BEER_ATTRIBUTES,
    ITUNES_ATTRIBUTES,
    beer_blocking_query,
    blocking_query,
    itunes_blocking_query,
    run_blocking,
)
from repro.workloads.matmul_query import (
    mape,
    reference_matrix_product,
    result_as_matrix,
    run_matmul_query,
)
from repro.workloads.pagerank import (
    DEFAULT_ALPHA,
    PR_Q1,
    PR_Q2,
    PR_Q3,
    PR_Q3_PER_NODE,
    reference_pagerank,
    run_pr_q1,
    run_pr_q2,
    run_pr_q3,
    sql_pagerank,
)
from repro.workloads.ssb_queries import (
    FLIGHT_REPRESENTATIVES,
    SSB_QUERIES,
    run_ssb_query,
)

__all__ = [
    "BEER_ATTRIBUTES",
    "DEFAULT_ALPHA",
    "FLIGHT_REPRESENTATIVES",
    "ITUNES_ATTRIBUTES",
    "PR_Q1",
    "PR_Q2",
    "PR_Q3",
    "PR_Q3_PER_NODE",
    "SSB_QUERIES",
    "beer_blocking_query",
    "blocking_query",
    "itunes_blocking_query",
    "mape",
    "reference_matrix_product",
    "reference_pagerank",
    "result_as_matrix",
    "run_blocking",
    "run_matmul_query",
    "run_pr_q1",
    "run_pr_q2",
    "run_pr_q3",
    "run_ssb_query",
    "sql_pagerank",
]

"""Entity-matching blocking queries (Section 5.4.2).

Blocking applies a natural-join heuristic per attribute: candidate pairs
are records agreeing on the attribute.  One query template per attribute,
matching the paper's EM-blocking queries.
"""

from __future__ import annotations

from repro.engine.base import QueryResult

BEER_ATTRIBUTES = ("abv", "style", "factory", "beer_name")
ITUNES_ATTRIBUTES = ("price", "genre", "time", "artist", "copyright", "album")


def blocking_query(attribute: str, payload: str) -> str:
    """The EM-blocking join on one attribute.

    ``payload`` is the descriptive column carried along with the ids
    (BEER_NAME for the beer dataset, SONG for iTunes-Amazon).
    """
    return f"""
        SELECT TABLE_A.ID, TABLE_A.{payload},
               TABLE_B.ID, TABLE_B.{payload}
        FROM TABLE_A, TABLE_B
        WHERE TABLE_A.{attribute} = TABLE_B.{attribute};
    """


def beer_blocking_query(attribute: str) -> str:
    if attribute not in BEER_ATTRIBUTES:
        raise KeyError(f"unknown BeerAdvo attribute {attribute!r}")
    return blocking_query(attribute, "beer_name")


def itunes_blocking_query(attribute: str) -> str:
    if attribute not in ITUNES_ATTRIBUTES:
        raise KeyError(f"unknown iTunes attribute {attribute!r}")
    return blocking_query(attribute, "song")


def run_blocking(engine, attribute: str, dataset: str) -> QueryResult:
    """Run one blocking query (``dataset`` is 'beer' or 'itunes')."""
    if dataset == "beer":
        return engine.execute(beer_blocking_query(attribute))
    if dataset == "itunes":
        return engine.execute(itunes_blocking_query(attribute))
    raise KeyError(f"unknown dataset {dataset!r}")

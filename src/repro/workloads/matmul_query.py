"""The matrix-multiplication query workload (Section 5.4.1).

Runs Figure 5's SQL matmul over (row_num, col_num, val) tables and
verifies the result against a numpy reference, including the MAPE metric
of paper Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.matmul import MATMUL_QUERY, dense_matrix_from_table
from repro.engine.base import QueryResult
from repro.storage.catalog import Catalog


def run_matmul_query(engine) -> QueryResult:
    return engine.execute(MATMUL_QUERY)


def result_as_matrix(result: QueryResult, dim: int) -> np.ndarray:
    """Decode the (col_num, row_num, res) triples back to C = A @ B.

    Figure 5's query emits A's column index and B's row index; with the
    row-major element encoding (A[row_num][col_num]) the product's entry
    (i, j) appears as (A.col_num = i?) — the paper's query computes
    C[i][j] = sum_k A[k][i] * B[j][k] over the join A.row_num = B.col_num,
    i.e. C = A^T B^T = (B A)^T.  We decode accordingly.
    """
    data = result.require_table().to_dict()
    names = list(data)
    i = data[names[0]].astype(int)
    j = data[names[1]].astype(int)
    values = data[names[2]]
    out = np.zeros((dim, dim))
    out[i, j] = values
    return out


def reference_matrix_product(catalog: Catalog, dim: int) -> np.ndarray:
    """Ground truth for the query: C[i][j] = sum_k A[k][i] * B[j][k]."""
    a = dense_matrix_from_table(catalog.get("a"), dim)
    b = dense_matrix_from_table(catalog.get("b"), dim)
    return a.T @ b.T


def mape(result: np.ndarray, reference: np.ndarray) -> float:
    """Weighted mean absolute percentage error (paper Table 1's metric):
    sum |err| / sum |reference|, robust to near-zero cells."""
    denominator = float(np.sum(np.abs(reference)))
    if denominator == 0:
        return 0.0 if np.allclose(result, reference) else float("inf")
    return float(np.sum(np.abs(result - reference)) / denominator)

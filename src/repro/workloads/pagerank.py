"""PageRank as SQL (Section 5.4.3).

The three queries PR Q1 (out-degrees), PR Q2 (initialization) and PR Q3
(the iterated update) from the paper, plus a driver that runs the full
algorithm by materializing each query's result back into the catalog —
exactly how a relational engine hosts PageRank.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ExecutionError
from repro.common.timing import TimingBreakdown
from repro.datasets.graphs import Graph, graph_catalog
from repro.engine.base import QueryResult
from repro.storage.table import Table

PR_Q1 = """
    SELECT NODE.ID, COUNT(EDGE.SRC) AS degree
    FROM NODE, EDGE
    WHERE NODE.ID = EDGE.SRC
    GROUP BY NODE.ID;
"""

PR_Q2 = """
    SELECT NODE.ID, (1 - @alpha) / @num_node AS rank
    FROM NODE, OUTDEGREE
    WHERE NODE.ID = OUTDEGREE.ID;
"""

PR_Q3 = """
    SELECT SUM(@alpha * PAGERANK.rank / OUTDEGREE.degree)
           + (1 - @alpha) / @num_node AS score
    FROM PAGERANK, OUTDEGREE
    WHERE PAGERANK.ID = OUTDEGREE.ID;
"""

# Per-destination variant of PR Q3: the full algorithm needs scores per
# node, which in SQL is the same update grouped by the edge destination.
PR_Q3_PER_NODE = """
    SELECT EDGE.DST, SUM(@alpha * PAGERANK.rank / OUTDEGREE.degree)
    FROM PAGERANK, OUTDEGREE, EDGE
    WHERE PAGERANK.ID = OUTDEGREE.ID
      AND PAGERANK.ID = EDGE.SRC
    GROUP BY EDGE.DST;
"""

DEFAULT_ALPHA = 0.85


def run_pr_q1(engine, alpha: float = DEFAULT_ALPHA) -> QueryResult:
    return engine.execute(PR_Q1)


def run_pr_q2(engine, n_nodes: int, alpha: float = DEFAULT_ALPHA) -> QueryResult:
    return engine.execute(PR_Q2, params={"alpha": alpha,
                                         "num_node": n_nodes})


def run_pr_q3(engine, n_nodes: int, alpha: float = DEFAULT_ALPHA) -> QueryResult:
    return engine.execute(PR_Q3, params={"alpha": alpha,
                                         "num_node": n_nodes})


def sql_pagerank(
    make_engine,
    graph: Graph,
    alpha: float = DEFAULT_ALPHA,
    iterations: int = 50,
    tolerance: float = 1e-9,
) -> tuple[np.ndarray, TimingBreakdown, int]:
    """Run the full PageRank algorithm through SQL queries.

    ``make_engine(catalog)`` builds an engine over the PageRank catalog.
    Returns (scores indexed by node, total simulated time, iterations).
    PR Q1 and PR Q2 run once; the per-node PR Q3 runs until convergence
    or the iteration cap (the paper uses 50 iterations).
    """
    catalog = graph_catalog(graph)
    engine = make_engine(catalog)
    breakdown = TimingBreakdown()
    n = graph.n_nodes

    q1 = engine.execute(PR_Q1)
    breakdown.add("pr_q1_outdegree", q1.seconds)
    degrees_table = q1.require_table()
    data = degrees_table.to_dict()
    id_col = [c for c in degrees_table.column_names if "id" in c.lower()][0]
    deg_col = [c for c in degrees_table.column_names if c != id_col][0]
    catalog.register(
        Table.from_dict("outdegree", {
            "id": data[id_col].astype(np.int64),
            "degree": data[deg_col].astype(float),
        }),
        replace=True,
    )

    q2 = engine.execute(PR_Q2, params={"alpha": alpha, "num_node": n})
    breakdown.add("pr_q2_init", q2.seconds)
    init = q2.require_table().to_dict()
    init_id = [c for c in init if "id" in c.lower()][0]
    init_rank = [c for c in init if c != init_id][0]
    catalog.register(
        Table.from_dict("pagerank", {
            "id": init[init_id].astype(np.int64),
            "rank": init[init_rank].astype(float),
        }),
        replace=True,
    )

    scores = np.zeros(n)
    ids = init[init_id].astype(np.int64)
    scores[ids] = init[init_rank]
    base = (1 - alpha) / n
    ran = 0
    for _ in range(iterations):
        ran += 1
        q3 = engine.execute(
            PR_Q3_PER_NODE, params={"alpha": alpha, "num_node": n}
        )
        breakdown.add("pr_q3_update", q3.seconds)
        update = q3.require_table().to_dict()
        dst_col = [c for c in update if "dst" in c.lower()]
        if not dst_col:
            raise ExecutionError("PR Q3 result lacks a destination column")
        val_col = [c for c in update if c != dst_col[0]][0]
        new_scores = np.full(n, base)
        new_scores[update[dst_col[0]].astype(np.int64)] += update[val_col]
        delta = float(np.abs(new_scores - scores).sum())
        scores = new_scores
        catalog.register(
            Table.from_dict("pagerank", {
                "id": np.arange(n),
                "rank": scores,
            }),
            replace=True,
        )
        if delta < tolerance:
            break
    return scores, breakdown, ran


def reference_pagerank(
    graph: Graph, alpha: float = DEFAULT_ALPHA, iterations: int = 50,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Plain numpy PageRank used as ground truth in tests.

    Matches the paper's formulation: dangling nodes do not redistribute
    (scores simply decay toward the teleport term), and the update is
    score[v] = (1-alpha)/n + alpha * sum_{u->v} score[u]/deg(u).
    """
    n = graph.n_nodes
    degrees = np.bincount(graph.src, minlength=n).astype(float)
    base = (1 - alpha) / n
    # PR Q2 initializes every rank to (1-alpha)/n.
    scores = np.full(n, base)
    for _ in range(iterations):
        contribution = np.where(degrees > 0, scores / np.maximum(degrees, 1), 0.0)
        spread = np.zeros(n)
        np.add.at(spread, graph.dst, contribution[graph.src])
        updated = base + alpha * spread
        if np.abs(updated - scores).sum() < tolerance:
            scores = updated
            break
        scores = updated
    return scores

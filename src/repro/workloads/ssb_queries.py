"""The 13 Star Schema Benchmark queries (4 flights).

Written in the engine's dialect: comma joins, conjunctive WHERE, IN-lists
in place of OR disjunctions.  TCUDB supports all 13 (Section 5.3); the
baseline engines execute them through the relational plan.
"""

from __future__ import annotations

SSB_QUERIES: dict[str, str] = {
    # -- Flight 1: revenue gained from discount/quantity windows -------- #
    "Q1.1": """
        SELECT SUM(lo_extendedprice * lo_discount) AS revenue
        FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey
          AND d_year = 1993
          AND lo_discount BETWEEN 1 AND 3
          AND lo_quantity < 25;
    """,
    "Q1.2": """
        SELECT SUM(lo_extendedprice * lo_discount) AS revenue
        FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey
          AND d_yearmonthnum = 199401
          AND lo_discount BETWEEN 4 AND 6
          AND lo_quantity BETWEEN 26 AND 35;
    """,
    "Q1.3": """
        SELECT SUM(lo_extendedprice * lo_discount) AS revenue
        FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey
          AND d_weeknuminyear = 6
          AND d_year = 1994
          AND lo_discount BETWEEN 5 AND 7
          AND lo_quantity BETWEEN 26 AND 35;
    """,
    # -- Flight 2: revenue by brand over years -------------------------- #
    "Q2.1": """
        SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1
        FROM lineorder, ddate, part, supplier
        WHERE lo_orderdate = d_datekey
          AND lo_partkey = p_partkey
          AND lo_suppkey = s_suppkey
          AND p_category = 'MFGR#12'
          AND s_region = 'AMERICA'
        GROUP BY d_year, p_brand1
        ORDER BY d_year, p_brand1;
    """,
    "Q2.2": """
        SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1
        FROM lineorder, ddate, part, supplier
        WHERE lo_orderdate = d_datekey
          AND lo_partkey = p_partkey
          AND lo_suppkey = s_suppkey
          AND p_brand1 IN ('MFGR#2221', 'MFGR#2222', 'MFGR#2223',
                           'MFGR#2224', 'MFGR#2225', 'MFGR#2226',
                           'MFGR#2227', 'MFGR#2228')
          AND s_region = 'ASIA'
        GROUP BY d_year, p_brand1
        ORDER BY d_year, p_brand1;
    """,
    "Q2.3": """
        SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1
        FROM lineorder, ddate, part, supplier
        WHERE lo_orderdate = d_datekey
          AND lo_partkey = p_partkey
          AND lo_suppkey = s_suppkey
          AND p_brand1 = 'MFGR#2239'
          AND s_region = 'EUROPE'
        GROUP BY d_year, p_brand1
        ORDER BY d_year, p_brand1;
    """,
    # -- Flight 3: revenue by customer/supplier geography ---------------- #
    "Q3.1": """
        SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue
        FROM lineorder, customer, supplier, ddate
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey
          AND c_region = 'ASIA'
          AND s_region = 'ASIA'
          AND d_year BETWEEN 1992 AND 1997
        GROUP BY c_nation, s_nation, d_year
        ORDER BY d_year ASC, revenue DESC;
    """,
    "Q3.2": """
        SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
        FROM lineorder, customer, supplier, ddate
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey
          AND c_nation = 'AMERICA_N3'
          AND s_nation = 'AMERICA_N3'
          AND d_year BETWEEN 1992 AND 1997
        GROUP BY c_city, s_city, d_year
        ORDER BY d_year ASC, revenue DESC;
    """,
    "Q3.3": """
        SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
        FROM lineorder, customer, supplier, ddate
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey
          AND c_city IN ('AMERICA_N1_C1', 'AMERICA_N1_C5')
          AND s_city IN ('AMERICA_N1_C1', 'AMERICA_N1_C5')
          AND d_year BETWEEN 1992 AND 1997
        GROUP BY c_city, s_city, d_year
        ORDER BY d_year ASC, revenue DESC;
    """,
    "Q3.4": """
        SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
        FROM lineorder, customer, supplier, ddate
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey
          AND c_city IN ('AMERICA_N1_C1', 'AMERICA_N1_C5')
          AND s_city IN ('AMERICA_N1_C1', 'AMERICA_N1_C5')
          AND d_yearmonth = 'Dec1997'
        GROUP BY c_city, s_city, d_year
        ORDER BY d_year ASC, revenue DESC;
    """,
    # -- Flight 4: profit drill-down -------------------------------------- #
    "Q4.1": """
        SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit
        FROM lineorder, ddate, customer, supplier, part
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_partkey = p_partkey
          AND lo_orderdate = d_datekey
          AND c_region = 'AMERICA'
          AND s_region = 'AMERICA'
          AND p_mfgr IN ('MFGR#1', 'MFGR#2')
        GROUP BY d_year, c_nation
        ORDER BY d_year, c_nation;
    """,
    "Q4.2": """
        SELECT d_year, s_nation, p_category,
               SUM(lo_revenue - lo_supplycost) AS profit
        FROM lineorder, ddate, customer, supplier, part
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_partkey = p_partkey
          AND lo_orderdate = d_datekey
          AND c_region = 'AMERICA'
          AND s_region = 'AMERICA'
          AND d_year IN (1997, 1998)
          AND p_mfgr IN ('MFGR#1', 'MFGR#2')
        GROUP BY d_year, s_nation, p_category
        ORDER BY d_year, s_nation, p_category;
    """,
    "Q4.3": """
        SELECT d_year, s_city, p_brand1,
               SUM(lo_revenue - lo_supplycost) AS profit
        FROM lineorder, ddate, customer, supplier, part
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_partkey = p_partkey
          AND lo_orderdate = d_datekey
          AND s_nation = 'AMERICA_N3'
          AND d_year IN (1997, 1998)
          AND p_category = 'MFGR#14'
        GROUP BY d_year, s_city, p_brand1
        ORDER BY d_year, s_city, p_brand1;
    """,
}

FLIGHT_REPRESENTATIVES = ("Q1.1", "Q2.1", "Q3.1", "Q4.1")


def run_ssb_query(engine, query_id: str):
    """Run one SSB query by id on any engine."""
    if query_id not in SSB_QUERIES:
        raise KeyError(f"unknown SSB query {query_id!r}")
    return engine.execute(SSB_QUERIES[query_id])

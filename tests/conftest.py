"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.microbench import microbench_catalog
from repro.hardware.gpu import GPUDevice
from repro.hardware.profiles import RTX_2080, RTX_3090
from repro.storage.catalog import Catalog
from repro.storage.table import Table


@pytest.fixture
def device() -> GPUDevice:
    return GPUDevice(RTX_3090)


@pytest.fixture
def device_2080() -> GPUDevice:
    return GPUDevice(RTX_2080)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_catalog() -> Catalog:
    """Two tiny (id, val) tables with known join structure."""
    catalog = Catalog()
    catalog.register(Table.from_dict("a", {
        "id": [1, 2, 3, 2, 5],
        "val": [10.0, 20.0, 30.0, 5.0, 7.0],
    }))
    catalog.register(Table.from_dict("b", {
        "id": [1, 1, 2, 4],
        "val": ["x", "y", "z", "w"],
    }))
    return catalog


@pytest.fixture
def micro_catalog() -> Catalog:
    return microbench_catalog(512, 16, seed=99)


def brute_force_equi_join(left: np.ndarray, right: np.ndarray):
    """O(n*m) reference join used to validate the vectorized kernels."""
    pairs = [
        (i, j)
        for i in range(left.size)
        for j in range(right.size)
        if left[i] == right[j]
    ]
    return pairs

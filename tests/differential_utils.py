"""Shared helpers for the differential / fuzz suites.

The canonical fp-tolerant row-multiset comparison lives in
:mod:`repro.bench.verify` (the benchmark subsystem replays every
benchmarked query through the same logic); this module wraps it with
pytest-friendly assertions.

Results are compared as *sorted row multisets*: rows are sorted by their
exact cells (strings, ints) first and rounded float cells last, so that
fp16-tolerant aggregate cells cannot destabilize the pairing, then each
paired row is compared cell-by-cell within a relative tolerance.
"""

from __future__ import annotations

from repro.bench.verify import (  # noqa: F401  (re-exported for suites)
    canonical_sorted,
    result_rows,
    rows_match,
)


def assert_rows_match(
    got_rows: list[tuple],
    expected_rows: list[tuple],
    rel: float = 1e-9,
    abs_tol: float = 1e-6,
    context: str = "",
):
    """Both row multisets are identical within fp tolerance."""
    error = rows_match(got_rows, expected_rows, rel=rel, abs_tol=abs_tol)
    suffix = f"\n  query: {context}" if context else ""
    assert error is None, f"{error}{suffix}"


def assert_results_match(got, expected, rel: float = 1e-9, context: str = ""):
    """Two QueryResults hold the same sorted row multiset."""
    assert_rows_match(
        result_rows(got), result_rows(expected), rel=rel, context=context
    )

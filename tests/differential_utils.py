"""Shared helpers for the differential / fuzz suites.

Results are compared as *sorted row multisets*: rows are sorted by their
exact cells (strings, ints) first and rounded float cells last, so that
fp16-tolerant aggregate cells cannot destabilize the pairing, then each
paired row is compared cell-by-cell within a relative tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest


def canonical_sorted(rows: list[tuple]) -> list[tuple]:
    """Rows sorted by exact cells first, rounded float cells last."""

    def key(row: tuple):
        exact: list[str] = []
        approx: list[str] = []
        for cell in row:
            if isinstance(cell, (bool, np.bool_)):
                exact.append(str(bool(cell)))
            elif isinstance(cell, (int, np.integer)):
                exact.append(f"{int(cell):+021d}")
            elif isinstance(cell, (float, np.floating)):
                approx.append(f"{float(cell):+.6e}")
            else:
                exact.append(str(cell))
        return (exact, approx)

    return sorted((tuple(row) for row in rows), key=key)


def result_rows(result) -> list[tuple]:
    return canonical_sorted(result.require_table().rows())


def assert_rows_match(
    got_rows: list[tuple],
    expected_rows: list[tuple],
    rel: float = 1e-9,
    abs_tol: float = 1e-6,
    context: str = "",
):
    """Both row multisets are identical within fp tolerance."""
    suffix = f"\n  query: {context}" if context else ""
    assert len(got_rows) == len(expected_rows), (
        f"row count {len(got_rows)} != {len(expected_rows)}{suffix}"
    )
    for got, expected in zip(got_rows, expected_rows):
        assert len(got) == len(expected), (
            f"row width {len(got)} != {len(expected)}{suffix}"
        )
        for g, e in zip(got, expected):
            if isinstance(g, str) or isinstance(e, str):
                assert g == e, f"{g!r} != {e!r}{suffix}"
            else:
                assert g == pytest.approx(e, rel=rel, abs=abs_tol), (
                    f"{g!r} != {e!r} (rel={rel}){suffix}"
                )


def assert_results_match(got, expected, rel: float = 1e-9, context: str = ""):
    """Two QueryResults hold the same sorted row multiset."""
    assert_rows_match(
        result_rows(got), result_rows(expected), rel=rel, context=context
    )

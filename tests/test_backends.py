"""Tensor execution backends: primitive contracts and differential fuzz.

Three layers of coverage for :mod:`repro.tensor.backend`:

* **per-primitive units** — every backend's matmul (2-D and 3-D
  stacked, fp16-strategy and integer), gather, bincount, nonzero,
  dense-from-COO, masked apply and accumulate-into obey the documented
  equivalence contract against the sim backend (exact for integer /
  index primitives, ``rel=2e-3`` for fp16-strategy products);
* **selection policy** — explicit option > ``REPRO_BACKEND`` env >
  ``sim`` default, :class:`ConfigError` on unknown names and on torch
  selection without torch installed, and the resolved name isolates
  :class:`~repro.engine.cache.ProgramCache` entries;
* **differential fuzz** — 50+ generated queries (reusing the seeded SSB
  generator) run under the fast backend across the native, hybrid and
  fallback routes plus the distributed engine, and must match both the
  sim backend and the reference oracle within the TCU tolerance.

Torch-specific tests auto-skip when PyTorch is not installed
(``TorchBackend.available()``) — CI never installs it.
"""

from __future__ import annotations

import numpy as np
import pytest

from differential_utils import assert_results_match
from test_fuzz_queries import QueryGenerator
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.datasets.ssb import ssb_catalog
from repro.engine.base import ExecutionMode
from repro.engine.reference import ReferenceEngine
from repro.engine.tcudb import DistributedEngine, TCUDBEngine, TCUDBOptions
from repro.hardware.gpu import GPUDevice
from repro.tensor.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    FastBackend,
    SimBackend,
    TorchBackend,
    backend_policy,
    get_backend,
)
from repro.tensor.precision import FP16_EXACT_INT, Precision

TCU_REL = 2e-3
FUZZ_SEED = 20250808
N_FUZZ_QUERIES = 60

needs_torch = pytest.mark.skipif(
    not TorchBackend.available(), reason="PyTorch not installed"
)


def execution_backends() -> list:
    """Every non-sim backend constructible in this environment."""
    backends = [FastBackend()]
    if TorchBackend.available():
        backends.append(TorchBackend())
    return backends


@pytest.fixture(scope="module")
def device():
    return GPUDevice()


@pytest.fixture(scope="module")
def sim():
    return SimBackend()


# --------------------------------------------------------------------- #
# Per-primitive contracts
# --------------------------------------------------------------------- #

class TestPrimitiveContracts:
    @pytest.mark.parametrize("backend", execution_backends(),
                             ids=lambda b: b.name)
    def test_matmul_2d_fp16_within_envelope(self, backend, sim, device):
        rng = make_rng(7)
        # Magnitudes inside the fp16-exact integer range keep the sim's
        # binary16 rounding small, so both land within rel=2e-3.
        a = rng.integers(0, 2, size=(17, 40)).astype(np.float64)
        b = rng.integers(0, FP16_EXACT_INT, size=(40, 9)).astype(np.float64)
        reference = sim.matmul(device, a, b, Precision.FP16)
        got = backend.matmul(device, a, b, Precision.FP16)
        assert got.dtype == np.float64
        np.testing.assert_allclose(got, reference, rtol=TCU_REL)

    @pytest.mark.parametrize("backend", execution_backends(),
                             ids=lambda b: b.name)
    @pytest.mark.parametrize("precision", [Precision.INT8, Precision.INT4])
    def test_matmul_2d_integer_exact(self, backend, sim, device, precision):
        rng = make_rng(11)
        bound = 7 if precision is Precision.INT4 else 90
        a = rng.integers(0, 2, size=(12, 33)).astype(np.float64)
        b = rng.integers(0, bound, size=(33, 6)).astype(np.float64)
        reference = sim.matmul(device, a, b, precision)
        got = backend.matmul(device, a, b, precision)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, reference)

    @pytest.mark.parametrize("backend", execution_backends(),
                             ids=lambda b: b.name)
    def test_matmul_3d_stacked_batch(self, backend, sim, device):
        rng = make_rng(13)
        a = rng.integers(0, 2, size=(3, 8, 21)).astype(np.float64)
        b = rng.integers(0, 500, size=(3, 21, 5)).astype(np.float64)
        reference = sim.matmul(device, a, b, Precision.FP16)
        got = backend.matmul(device, a, b, Precision.FP16)
        assert got.shape == reference.shape == (3, 8, 5)
        np.testing.assert_allclose(got, reference, rtol=TCU_REL)

    @pytest.mark.parametrize("backend", execution_backends(),
                             ids=lambda b: b.name)
    def test_matmul_into_accumulates(self, backend, sim, device):
        rng = make_rng(17)
        acc = np.zeros((10, 7))
        expected = np.zeros((10, 7))
        for _ in range(4):  # several chunks, same output shape
            a = rng.integers(0, 2, size=(10, 25)).astype(np.float64)
            b = rng.integers(0, 800, size=(25, 7)).astype(np.float64)
            acc = backend.matmul_into(acc, device, a, b, Precision.FP16)
            expected += sim.matmul(device, a, b, Precision.FP16)
        np.testing.assert_allclose(acc, expected, rtol=TCU_REL)

    def test_fast_matmul_into_reuses_scratch_buffer(self, device):
        backend = FastBackend()
        acc = np.zeros((6, 4))
        a = np.ones((6, 10))
        b = np.ones((10, 4))
        backend.matmul_into(acc, device, a, b, Precision.FP16)
        first = backend._scratch.buffers[(6, 4)]
        backend.matmul_into(acc, device, a, b, Precision.FP16)
        assert backend._scratch.buffers[(6, 4)] is first  # no realloc

    @pytest.mark.parametrize("backend",
                             [SimBackend()] + execution_backends(),
                             ids=lambda b: b.name)
    def test_gather(self, backend):
        array = np.array([10, 20, 30, 40, 50])
        indices = np.array([4, 0, 2, 2])
        np.testing.assert_array_equal(
            backend.gather(array, indices), np.array([50, 10, 30, 30])
        )

    @pytest.mark.parametrize("backend",
                             [SimBackend()] + execution_backends(),
                             ids=lambda b: b.name)
    def test_bincount(self, backend):
        codes = np.array([0, 2, 2, 1, 2])
        np.testing.assert_array_equal(
            backend.bincount(codes, minlength=5),
            np.array([1, 1, 3, 0, 0]),
        )
        weighted = backend.bincount(
            codes, weights=np.array([1.0, 2.0, 3.0, 4.0, 5.0]), minlength=4
        )
        np.testing.assert_array_equal(weighted,
                                      np.array([1.0, 4.0, 10.0, 0.0]))

    @pytest.mark.parametrize("backend",
                             [SimBackend()] + execution_backends(),
                             ids=lambda b: b.name)
    def test_nonzero(self, backend):
        matrix = np.array([[0, 3], [1, 0], [0, 0]])
        rows, cols = backend.nonzero(matrix)
        np.testing.assert_array_equal(rows, np.array([0, 1]))
        np.testing.assert_array_equal(cols, np.array([1, 0]))

    @pytest.mark.parametrize("backend",
                             [SimBackend()] + execution_backends(),
                             ids=lambda b: b.name)
    def test_dense_from_coo_sums_duplicates(self, backend):
        rows = np.array([0, 1, 1, 0])
        cols = np.array([1, 2, 2, 1])
        vals = np.array([2.0, 3.0, 4.0, 5.0])
        dense = backend.dense_from_coo(rows, cols, vals, (2, 3))
        expected = np.array([[0.0, 7.0, 0.0], [0.0, 0.0, 7.0]])
        np.testing.assert_array_equal(np.asarray(dense, dtype=np.float64),
                                      expected)
        empty = backend.dense_from_coo(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            np.array([]), (2, 2),
        )
        assert np.asarray(empty).shape == (2, 2)
        assert not np.any(empty)

    @pytest.mark.parametrize("backend",
                             [SimBackend()] + execution_backends(),
                             ids=lambda b: b.name)
    def test_apply_mask(self, backend):
        mask = np.array([True, False, True])
        filtered = backend.apply_mask(
            [np.array([1, 2, 3]), np.array(["a", "b", "c"])], mask
        )
        np.testing.assert_array_equal(filtered[0], np.array([1, 3]))
        np.testing.assert_array_equal(filtered[1], np.array(["a", "c"]))

    def test_fast_fill_is_sgemm_ready(self):
        """The fast backend's operand fill feeds sgemm without copies."""
        dense = FastBackend().dense_from_coo(
            np.array([0, 1]), np.array([1, 0]), np.array([1.5, 2.5]), (2, 2)
        )
        assert dense.dtype == np.float32
        assert dense.flags.c_contiguous


# --------------------------------------------------------------------- #
# Selection policy + cache isolation
# --------------------------------------------------------------------- #

class TestSelectionPolicy:
    def test_default_is_sim(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backend_policy(None) == DEFAULT_BACKEND == "sim"
        assert isinstance(get_backend(None), SimBackend)

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        assert backend_policy(None) == "fast"
        assert isinstance(get_backend(None), FastBackend)

    def test_explicit_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        assert backend_policy("sim") == "sim"

    def test_names_are_case_insensitive(self):
        assert backend_policy("  FAST ") == "fast"

    def test_unknown_name_raises(self, monkeypatch):
        with pytest.raises(ConfigError, match="unknown tensor backend"):
            backend_policy("cuda")
        monkeypatch.setenv("REPRO_BACKEND", "nope")
        with pytest.raises(ConfigError, match="unknown tensor backend"):
            backend_policy(None)

    def test_registry_covers_documented_backends(self):
        assert set(BACKENDS) == {"sim", "fast", "torch"}

    @pytest.mark.skipif(TorchBackend.available(),
                        reason="torch installed: selection must succeed")
    def test_torch_unavailable_is_config_error(self):
        with pytest.raises(ConfigError, match="not installed"):
            get_backend("torch")

    @needs_torch
    def test_torch_selectable_when_installed(self):
        assert isinstance(get_backend("torch"), TorchBackend)

    def test_cache_key_isolates_backends(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        catalog = ssb_catalog(scale_factor=1, rows_per_sf=200, seed=5)
        by_option = TCUDBEngine(
            catalog, options=TCUDBOptions(backend="fast"))
        defaulted = TCUDBEngine(catalog)
        assert by_option._cache_options_key() != defaulted._cache_options_key()
        # A backend picked up from the environment must isolate the same
        # way — the key records the *resolved* name, never "None".
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        by_env = TCUDBEngine(catalog)
        assert by_env._cache_options_key() == by_option._cache_options_key()


# --------------------------------------------------------------------- #
# Differential fuzz: fast backend vs sim vs oracle, every route
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def fuzz_catalog():
    return ssb_catalog(scale_factor=1, rows_per_sf=1500, seed=13)


def test_fuzzed_queries_agree_across_backends(fuzz_catalog):
    """50+ generated queries: the fast backend matches both the sim
    backend and the oracle on the native, hybrid and fallback routes."""
    generator = QueryGenerator(make_rng(FUZZ_SEED))
    oracle = ReferenceEngine(fuzz_catalog)
    engines = {
        name: TCUDBEngine(fuzz_catalog, mode=ExecutionMode.REAL,
                          options=TCUDBOptions(backend=name))
        for name in ("sim", "fast")
    }
    routes: set[str] = set()
    failures: list[str] = []
    for index in range(N_FUZZ_QUERIES):
        sql = generator.generate()
        try:
            expected = oracle.execute(sql)
            sim_run = engines["sim"].execute(sql)
            fast_run = engines["fast"].execute(sql)
            if fast_run.extra.get("fallback_reason"):
                routes.add("fallback")
            elif fast_run.extra.get("executed_by") == "TCU-hybrid":
                routes.add("hybrid")
            else:
                routes.add("native")
            assert_results_match(fast_run, expected, rel=TCU_REL,
                                 context=f"fast vs oracle #{index}: {sql}")
            assert_results_match(fast_run, sim_run, rel=TCU_REL,
                                 context=f"fast vs sim #{index}: {sql}")
            # Simulated seconds model the device, not the host path.
            assert fast_run.seconds == sim_run.seconds, (
                f"simulated seconds changed with the backend: {sql}"
            )
        except AssertionError as error:
            failures.append(f"-- fuzz #{index}\n{sql}\n   {error}")
        except Exception as error:  # engine crash: also a bug
            failures.append(
                f"-- fuzz #{index} raised {type(error).__name__}: "
                f"{error}\n{sql}"
            )
    if failures:
        pytest.fail(
            f"{len(failures)}/{N_FUZZ_QUERIES} fuzzed queries diverged "
            "across backends; reproducing SQL below\n"
            + "\n".join(failures[:10])
        )
    assert routes == {"native", "hybrid", "fallback"}, routes


DISTRIBUTED_SQL = (
    """SELECT d_year, SUM(lo_revenue) AS rev, COUNT(*) AS orders
       FROM lineorder, ddate WHERE lo_orderdate = d_datekey
       GROUP BY d_year;""",
    """SELECT s_region, SUM(lo_revenue) AS rev
       FROM lineorder, supplier WHERE lo_suppkey = s_suppkey
       GROUP BY s_region;""",
    """SELECT SUM(lo_extendedprice * lo_discount) AS revenue
       FROM lineorder WHERE lo_discount BETWEEN 1 AND 3;""",
)


def test_distributed_route_matches_across_backends(fuzz_catalog):
    """The fast backend threads through sharded execution unchanged."""
    oracle = ReferenceEngine(fuzz_catalog)
    engines = {
        name: DistributedEngine(
            fuzz_catalog, shards=2, fact="lineorder",
            partition_key="lo_orderkey", mode=ExecutionMode.REAL,
            options=TCUDBOptions(backend=name),
        )
        for name in ("sim", "fast")
    }
    for sql in DISTRIBUTED_SQL:
        expected = oracle.execute(sql)
        sim_run = engines["sim"].execute(sql)
        fast_run = engines["fast"].execute(sql)
        assert_results_match(fast_run, expected, rel=TCU_REL,
                             context=f"distributed fast vs oracle: {sql}")
        assert_results_match(fast_run, sim_run, rel=TCU_REL,
                             context=f"distributed fast vs sim: {sql}")
        assert fast_run.seconds == sim_run.seconds


@needs_torch
def test_torch_backend_matches_oracle(fuzz_catalog):
    """When torch is installed, the torch backend joins the contract."""
    oracle = ReferenceEngine(fuzz_catalog)
    engine = TCUDBEngine(fuzz_catalog, mode=ExecutionMode.REAL,
                         options=TCUDBOptions(backend="torch"))
    for sql in DISTRIBUTED_SQL:
        assert_results_match(engine.execute(sql), oracle.execute(sql),
                             rel=TCU_REL, context=sql)

"""Experiment harness: shapes, crossovers and headline claims.

These integration tests run scaled-down configurations and assert the
qualitative results the paper reports — who wins, where plans switch —
without depending on exact constants.
"""

import pytest

from repro.bench import (
    ExperimentResult,
    geometric_mean_ratio,
    run_ablation_density_switch,
    run_ablation_fused_agg,
    run_ablation_precision,
    run_ablation_transform_location,
    run_concurrency,
    run_fig3,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_table1,
    run_table4,
    run_tables23,
)


class TestHarness:
    def test_normalization_and_lookup(self):
        result = ExperimentResult("x", "t")
        result.add("a", "E1", 2.0)
        result.add("a", "E2", 1.0)
        result.normalize("a", "E2")
        assert result.find("a", "E1").normalized == 2.0
        with pytest.raises(KeyError):
            result.find("zz", "E1")

    def test_to_text_renders(self):
        result = ExperimentResult("x", "title")
        result.add("c1", "E", 0.001, paper_value=1.0)
        result.normalize("c1", "E")
        text = result.to_text()
        assert "title" in text and "E" in text

    def test_geometric_mean_ratio(self):
        result = ExperimentResult("x", "t")
        p = result.add("a", "E", 2.0, paper_value=1.0)
        p.normalized = 2.0
        assert geometric_mean_ratio(result) == pytest.approx(2.0)


class TestFig3:
    def test_tcu_beats_cuda_at_every_dim(self):
        result = run_fig3(dims=[1024, 4096])
        for dim in ("1024", "4096"):
            cuda = result.find(dim, "CUDA cores").seconds
            tcu = result.find(dim, "TCUs").seconds
            assert tcu < cuda


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7("q1", sizes=[4096, 8192])

    def test_engine_ordering(self, result):
        for config in result.configs():
            tcudb = result.find(config, "TCUDB").normalized
            ydb = result.find(config, "YDB").normalized
            monet = result.find(config, "MonetDB").normalized
            assert tcudb < ydb < monet

    def test_speedup_grows_with_records(self, result):
        small = (result.find("4096,32", "YDB").seconds
                 / result.find("4096,32", "TCUDB").seconds)
        large = (result.find("8192,32", "YDB").seconds
                 / result.find("8192,32", "TCUDB").seconds)
        assert large > small

    def test_within_3x_of_paper(self, result):
        ratio = geometric_mean_ratio(result)
        assert ratio is not None
        assert 1 / 3 < ratio < 3


class TestFig8:
    def test_crossover_at_high_distinct(self):
        result = run_fig8("q1", distincts=[32, 4096])
        low = result.find("4096,32", "TCUDB").normalized
        high = result.find("4096,4096", "TCUDB").normalized
        assert high > 4 * low  # dense-plan cost rises with the domain
        ydb_high = result.find("4096,4096", "YDB").normalized
        assert high > 0.8 * ydb_high  # near/right of the crossover


class TestFig9:
    def test_tcudb_competitive_on_ssb(self):
        result = run_fig9(scale_factor=1, rows_per_sf=30_000)
        for query_id in ("Q1.1", "Q2.1", "Q4.1"):
            assert result.find(query_id, "TCUDB").normalized < 1.0
        for query_id in ("Q1.1", "Q2.1", "Q3.1", "Q4.1"):
            assert result.find(query_id, "MonetDB").normalized > 1.0

    def test_q31_is_tcudbs_worst_flight(self):
        result = run_fig9(scale_factor=1, rows_per_sf=30_000)
        values = {
            q: result.find(q, "TCUDB").normalized
            for q in ("Q1.1", "Q2.1", "Q3.1", "Q4.1")
        }
        assert max(values, key=values.get) == "Q3.1"


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10(engine_dims=[128, 256],
                         projected_dims=[4096, 8192, 16384, 32768])

    def test_tcudb_wins_at_every_dim(self, result):
        for dim in ("4096", "8192", "16384", "32768"):
            assert (result.find(dim, "TCUDB").normalized
                    < result.find(dim, "YDB").normalized)

    def test_blocked_at_32768(self, result):
        assert result.find("32768", "TCUDB").note == "blocked"

    def test_within_3x_of_paper(self, result):
        ratio = geometric_mean_ratio(result)
        assert ratio is not None and 1 / 3 < ratio < 3


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(dims=[2048, 8192], sample=48)

    def test_zero_one_exact(self, result):
        for dim in (2048, 8192):
            assert result.find(f"0/1 dim={dim}", "TCUDB fp16").seconds == 0.0

    def test_error_grows_with_range(self, result):
        small = result.find("+-2^7 dim=8192", "TCUDB fp16").seconds
        large = result.find("+-2^15 dim=8192", "TCUDB fp16").seconds
        assert small <= large
        assert large < 0.1  # paper: below 0.01%; ours stays below 0.1%

    def test_2pow31_not_catastrophic(self, result):
        value = result.find("+-2^31 dim=2048", "TCUDB fp16").seconds
        assert value < 0.1


class TestFig11:
    def test_tcudb_wins_all_beer_attributes(self):
        result = run_fig11("beer")
        for attribute in ("abv", "style", "factory", "beer_name"):
            assert result.find(attribute, "TCUDB").normalized < 1.0

    def test_biggest_win_on_lowest_cardinality(self):
        result = run_fig11("beer")
        speedups = {
            a: 1.0 / result.find(a, "TCUDB").normalized
            for a in ("abv", "style", "factory", "beer_name")
        }
        # Low-cardinality attributes (abv: 20, style: 71 distinct) see the
        # largest blocking speedups; high-cardinality ones the smallest.
        assert speedups["abv"] > speedups["factory"]
        assert speedups["abv"] > speedups["beer_name"]
        assert speedups["style"] > speedups["beer_name"]

    def test_high_cardinality_uses_spmm_on_scaled_itunes(self):
        result = run_fig11("itunes_scaled")
        notes = {p.config: p.note for p in result.points
                 if p.engine == "TCUDB"}
        assert notes["album"] in ("sparse", "fallback")
        assert result.find("price", "TCUDB").normalized < 0.15


class TestFig12And13:
    def test_fig12_dense_to_sparse_switch(self):
        result = run_fig12("q1", sizes=[1024, 8192])
        small_note = result.find("1024", "TCUDB").note
        large_note = result.find("8192", "TCUDB").note
        assert small_note == "dense"
        assert large_note == "sparse"

    def test_fig12_tcudb_wins(self):
        result = run_fig12("q1", sizes=[1024, 4096])
        for config in ("1024", "4096"):
            assert (result.find(config, "TCUDB").seconds
                    < result.find(config, "YDB").seconds)

    def test_fig13_orderings(self):
        result = run_fig13(sizes=[1024, 4096, 16384])
        # TCUDB fastest, MAGiQ between TCUDB and MonetDB (paper Fig. 13);
        # our model preserves this for the small/mid sizes and keeps
        # TCUDB below MonetDB everywhere.
        for size in ("1024", "4096"):
            tcudb = result.find(size, "TCUDB").normalized
            magiq = result.find(size, "MAGiQ").normalized
            monet = result.find(size, "MonetDB").normalized
            assert tcudb < magiq < monet
        assert (result.find("16384", "TCUDB").normalized
                < result.find("16384", "MonetDB").normalized)
        # YDB absent beyond its 8K cap.
        with pytest.raises(KeyError):
            result.find("16384", "YDB")


class TestFig14:
    def test_tcudb_scales_better_across_generations(self):
        result = run_fig14(sizes=[16384, 32768])
        for query in ("Q1", "Q3", "Q4"):
            for size in (16384, 32768):
                config = f"{query} {size},32"
                assert result.find(config, "TCUDB").seconds > 1.0
                assert result.find(config, "YDB").seconds > 1.0
        # The paper's headline claim holds for Q1 (whose runtime is
        # dominated by device-side compaction/GEMM): TCU-heavy execution
        # gains more from the new generation than vector-heavy execution.
        # Q3/Q4 diverge in our model because the compact grouped
        # construction keeps their device-side work tiny (EXPERIMENTS.md).
        for size in (16384, 32768):
            config = f"Q1 {size},32"
            assert (result.find(config, "TCUDB").seconds
                    > result.find(config, "YDB").seconds)


class TestShapeTables:
    def test_tables23_distincts_exact(self):
        result = run_tables23()
        for point in result.points:
            assert point.seconds == point.paper_value

    def test_table4_edges_close(self):
        result = run_table4(sizes=[1024, 4096])
        for point in result.points:
            assert point.seconds == pytest.approx(point.paper_value, rel=0.4)


class TestAblations:
    def test_fused_agg_wins(self):
        result = run_ablation_fused_agg(sizes=[4096])
        assert result.find("4096,32", "join + group-by").normalized > 1.0

    def test_density_switch_tracks_best(self):
        result = run_ablation_density_switch(distincts=[32, 16384])
        for config in ("4096,32", "4096,16384"):
            chosen = result.find(config, "optimizer").seconds
            dense = result.find(config, "forced dense").seconds
            sparse = result.find(config, "forced sparse").seconds
            assert chosen <= min(dense, sparse) * 1.05

    def test_compact_precision_cheaper(self):
        result = run_ablation_precision(sizes=[16384])
        int4 = result.find("16384,256", "int4").seconds
        fp16 = result.find("16384,256", "fp16").seconds
        assert int4 < fp16

    def test_transform_location_matters(self):
        result = run_ablation_transform_location(sizes=[32768])
        auto = result.find("32768,32", "gpu-allowed").seconds
        cpu = result.find("32768,32", "cpu-only").seconds
        assert auto <= cpu


class TestConcurrency:
    def test_scaling_curve_shape(self):
        result = run_concurrency(rows=3000)
        assert result.unit == "ratio"
        assert result.host_measured is True
        # Both series anchor at exactly 1.0 for workers=1 and carry the
        # raw wall-clock on every point.
        for engine in ("TCUDB", "Reference-streaming"):
            assert result.find("workers=1", engine).seconds == 1.0
            for config in result.configs():
                point = result.find(config, engine)
                assert point.host_seconds is not None
                assert point.host_seconds > 0
        # The run-recorded invariants: bit-identical rows across worker
        # counts, worker-invariant simulated seconds, and the CPU count
        # a reader needs to interpret the ratios.
        notes = "\n".join(result.notes)
        assert "row divergences: 0" in notes
        assert "worker-invariant: True" in notes
        assert "cpu_count=" in notes

    def test_round_trips_through_the_report_schema(self):
        result = run_concurrency(rows=3000)
        clone = ExperimentResult.from_dict(result.to_dict())
        assert clone.host_measured is True
        assert clone.unit == "ratio"
        assert [p.host_seconds for p in clone.points] == [
            p.host_seconds for p in result.points
        ]
        # ratio-unit experiments never feed the host-drift geomean
        assert clone.host_drift_ratios() == []

"""The oracle-verified benchmark subsystem: profiles, report
serialization, the regression gate and per-point verification."""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import ExperimentResult, SeriesPoint
from repro.bench.regress import (
    EXIT_MISMATCH,
    EXIT_OK,
    EXIT_SLOWDOWN,
    EXIT_STALE_BASELINE,
    compare_reports,
)
from repro.bench.report import SCHEMA_VERSION, BenchReport, report_date
from repro.bench.scale import PROFILES, get_profile
from repro.bench.verify import OracleVerifier, rows_match
from repro.engine import create_engine
from repro.workloads.ssb_queries import SSB_QUERIES


def _toy_experiment(experiment_id="exp1", seconds=(1.0, 2.0),
                    verified=True, unit="seconds") -> ExperimentResult:
    result = ExperimentResult(experiment_id, f"title of {experiment_id}",
                              unit=unit)
    for index, value in enumerate(seconds):
        point = result.add(f"c{index}", "TCUDB", value, paper_value=1.0,
                           note="n")
        point.normalized = value
        point.verified = verified
        point.verify_kind = "oracle"
    result.notes.append("a note")
    return result


def _toy_report(**kwargs) -> BenchReport:
    return BenchReport(profile="smoke",
                       experiments=[_toy_experiment()], **kwargs)


class TestScaleProfiles:
    def test_registry(self):
        assert set(PROFILES) == {"smoke", "paper", "stress"}
        assert get_profile("SMOKE").name == "smoke"
        with pytest.raises(KeyError):
            get_profile("nope")

    def test_smoke_is_strictly_smaller_than_paper(self):
        smoke, paper = get_profile("smoke"), get_profile("paper")
        assert max(smoke.micro_sizes) < max(paper.micro_sizes)
        assert smoke.ssb_rows_per_sf < paper.ssb_rows_per_sf
        assert max(smoke.fig13_sizes) < max(paper.fig13_sizes)
        # Both profiles verify since the chunked-storage refactor; smoke
        # replays the exact catalogs, paper replays sampled + streaming.
        assert smoke.verify and smoke.verify_policy == "full"
        assert paper.verify and paper.verify_policy == "stream"

    def test_profile_to_dict_roundtrips_json(self):
        data = get_profile("smoke").to_dict()
        assert json.loads(json.dumps(data)) == data


class TestBenchReportSerialization:
    def test_round_trip(self, tmp_path):
        report = _toy_report(wall_seconds=1.5)
        path = tmp_path / "bench.json"
        report.write(str(path))
        loaded = BenchReport.load(str(path))
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.profile == report.profile
        assert loaded.wall_seconds == 1.5
        assert loaded.generated_at == report.generated_at
        assert loaded.environment == report.environment
        # the full dict (points, notes, verification, fidelity) survives
        assert loaded.to_dict() == report.to_dict()

    def test_point_fields_preserved(self):
        report = _toy_report()
        point = BenchReport.from_dict(
            report.to_dict()).experiments[0].points[0]
        assert isinstance(point, SeriesPoint)
        assert point.verified is True
        assert point.verify_kind == "oracle"
        assert point.paper_value == 1.0
        assert point.note == "n"

    def test_newer_schema_rejected(self):
        data = _toy_report().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            BenchReport.from_dict(data)

    def test_summary_counts_and_fidelity(self):
        report = _toy_report()
        summary = report.summary()
        assert summary["points"] == 2
        assert summary["verified"] == 2
        assert summary["mismatched"] == 0
        # normalized/paper ratios are 1.0 and 2.0 -> geomean sqrt(2)
        assert summary["fidelity_geomean"] == pytest.approx(2 ** 0.5)

    def test_default_filename_embeds_profile_and_date(self, monkeypatch):
        monkeypatch.setenv("SOURCE_DATE_EPOCH", "0")
        report = BenchReport(profile="smoke")
        assert report.default_filename() == "BENCH_smoke_1970-01-01.json"

    def test_report_date_honors_source_date_epoch(self, monkeypatch):
        monkeypatch.setenv("SOURCE_DATE_EPOCH", "946684800")
        assert report_date() == "2000-01-01"
        monkeypatch.delenv("SOURCE_DATE_EPOCH")
        assert report_date() >= "2025-01-01"


class TestRegressionGate:
    def test_identical_reports_pass(self):
        verdict = compare_reports(_toy_report(), _toy_report())
        assert verdict.verdict == "pass"
        assert verdict.exit_status == EXIT_OK
        assert verdict.geomean_ratio == pytest.approx(1.0)

    def test_twenty_percent_slowdown_fails(self):
        baseline = _toy_report()
        current = BenchReport(
            profile="smoke",
            experiments=[_toy_experiment(seconds=(1.2, 2.4))],
        )
        verdict = compare_reports(current, baseline, max_slowdown=0.10)
        assert verdict.verdict == "slowdown"
        assert verdict.exit_status == EXIT_SLOWDOWN
        assert verdict.geomean_ratio == pytest.approx(1.2)
        assert "SLOWDOWN" in verdict.render()

    def test_slowdown_within_tolerance_passes(self):
        baseline = _toy_report()
        current = BenchReport(
            profile="smoke",
            experiments=[_toy_experiment(seconds=(1.05, 2.1))],
        )
        assert compare_reports(current, baseline,
                               max_slowdown=0.10).verdict == "pass"

    def test_oracle_mismatch_fails_even_when_fast(self):
        baseline = _toy_report()
        current = BenchReport(
            profile="smoke",
            experiments=[_toy_experiment(seconds=(0.5, 1.0),
                                         verified=False)],
        )
        verdict = compare_reports(current, baseline)
        assert verdict.verdict == "mismatch"
        assert verdict.exit_status == EXIT_MISMATCH
        assert verdict.mismatches

    def test_non_time_units_excluded_from_geomean(self):
        baseline = BenchReport(
            profile="smoke",
            experiments=[_toy_experiment("mape", unit="percent")],
        )
        current = BenchReport(
            profile="smoke",
            experiments=[_toy_experiment("mape", seconds=(10.0, 20.0),
                                         unit="percent")],
        )
        verdict = compare_reports(current, baseline, max_slowdown=0.10)
        # a 10x MAPE change is not a slowdown, but it is reported
        assert verdict.verdict == "pass"
        assert verdict.geomean_ratio is None
        assert any("mape" in w for w in verdict.warnings)

    def test_host_measured_experiments_exempt_from_drift_warnings(self):
        # The concurrency scaling ratios are host wall-clock: machine-
        # dependent, so value drift is measurement, not regression.
        def scaling(values):
            experiment = _toy_experiment("concurrency_scaling",
                                         seconds=values, unit="ratio")
            experiment.host_measured = True
            return BenchReport(profile="smoke", experiments=[experiment])

        verdict = compare_reports(scaling((0.5, 0.4)), scaling((1.0, 2.0)),
                                  max_slowdown=0.10)
        assert verdict.verdict == "pass"
        assert not any("concurrency_scaling" in w for w in verdict.warnings)

    def test_missing_overlap_fails_closed(self):
        # A baseline that gates nothing must not report "pass": a profile
        # resize or experiment rename would otherwise disable the gate.
        current = BenchReport(profile="smoke",
                              experiments=[_toy_experiment("a")])
        baseline = BenchReport(profile="smoke",
                               experiments=[_toy_experiment("b")])
        verdict = compare_reports(current, baseline)
        assert verdict.verdict == "stale-baseline"
        assert verdict.exit_status == EXIT_STALE_BASELINE
        assert any("no points matched" in w for w in verdict.warnings)
        assert any("stale baseline" in w for w in verdict.warnings)

    def test_zero_second_point_excluded_not_treated_as_speedup(self):
        baseline = _toy_report()
        # one point breaks to 0.0s while the other regresses 20%: the
        # zero must not drag the geomean below the gate threshold
        current = BenchReport(
            profile="smoke",
            experiments=[_toy_experiment(seconds=(0.0, 2.4))],
        )
        verdict = compare_reports(current, baseline, max_slowdown=0.10)
        assert verdict.verdict == "slowdown"
        assert verdict.geomean_ratio == pytest.approx(1.2)
        assert any("non-positive current seconds" in w
                   for w in verdict.warnings)

    def test_schema_version_skew_refused_as_stale(self):
        current, baseline = _toy_report(), _toy_report()
        baseline.schema_version = 0
        verdict = compare_reports(current, baseline)
        assert verdict.verdict == "stale-baseline"
        assert verdict.exit_status == EXIT_STALE_BASELINE
        assert verdict.geomean_ratio is None
        assert not verdict.deltas
        assert any("schema version differs" in w for w in verdict.warnings)

    def test_empty_experiments_filter_errors(self, capsys):
        from repro.bench.run import EXIT_EMPTY_FILTER, main
        status = main(["--profile", "smoke", "--experiments", "nope"])
        assert status == EXIT_EMPTY_FILTER
        err = capsys.readouterr().err
        assert "matched no experiments" in err
        assert "fig3" in err  # the available keys are listed

    def test_no_time_points_at_all_still_passes(self):
        # Nothing to gate on either side (all non-time units): not stale.
        current = BenchReport(
            profile="smoke",
            experiments=[_toy_experiment("mape", unit="percent")],
        )
        baseline = BenchReport(
            profile="smoke",
            experiments=[_toy_experiment("mape", unit="percent")],
        )
        assert compare_reports(current, baseline).verdict == "pass"

    def test_unit_change_skips_point_with_warning(self):
        baseline = BenchReport(
            profile="smoke",
            experiments=[_toy_experiment("exp", unit="ratio"),
                         _toy_experiment("other")],
        )
        current = BenchReport(
            profile="smoke",
            # same keys, but "exp" now reports seconds 10x the baseline's
            # raw ratio values — must be skipped, not treated as slowdown
            experiments=[_toy_experiment("exp", seconds=(10.0, 20.0)),
                         _toy_experiment("other")],
        )
        verdict = compare_reports(current, baseline, max_slowdown=0.10)
        assert verdict.verdict == "pass"
        assert any("unit changed" in w for w in verdict.warnings)
        # only the unchanged experiment's points enter the geomean
        assert all(d.experiment_id == "other" for d in verdict.deltas)


class TestRowsMatch:
    def test_match_and_tolerance(self):
        assert rows_match([(1, "x", 1.0)], [(1, "x", 1.0 + 1e-12)]) is None
        assert rows_match([(1.0,)], [(1.001,)], rel=2e-3) is None

    def test_mismatch_messages(self):
        assert "row count" in rows_match([(1,)], [(1,), (2,)])
        assert "width" in rows_match([(1,)], [(1, 2)])
        assert "!=" in rows_match([(1.0,)], [(2.0,)])
        assert "!=" in rows_match([("a",)], [("b",)])


class TestOracleVerification:
    def test_smoke_ssb_flight_matches_oracle(self):
        """One SSB figure at smoke scale: every benchmarked point must
        replay to exactly the oracle's rows."""
        from repro.bench.exp_ssb import run_fig9

        profile = get_profile("smoke")
        verifier = OracleVerifier(enabled=True)
        result = run_fig9(1, queries=("Q1.1", "Q2.1"), profile=profile,
                          verifier=verifier)
        summary = result.verification_summary()
        assert summary["mismatched"] == 0
        assert summary["unchecked"] == 0
        assert summary["verified"] == len(result.points) == 6
        for point in result.points:
            assert point.verified is True
            assert point.verify_kind == "oracle"

    def test_verifier_caches_oracle_runs(self):
        from repro.datasets.ssb import ssb_catalog

        catalog = ssb_catalog(scale_factor=1, rows_per_sf=1_000, seed=9)
        verifier = OracleVerifier(enabled=True)
        result = ExperimentResult("x", "t")
        sql = SSB_QUERIES["Q1.1"]
        for engine in ("MonetDB", "YDB"):
            point = result.add("Q1.1", engine, 1.0)
            verifier.verify_query(point, engine, catalog, sql)
        assert len(verifier._oracle_cache) == 1
        assert verifier.checked == 2

    def test_disabled_verifier_records_skip(self):
        result = ExperimentResult("x", "t")
        point = result.add("c", "TCUDB", 1.0)
        OracleVerifier(enabled=False).verify_query(
            point, "TCUDB", None, "SELECT 1")
        assert point.verified is None
        assert "unverified" in point.verify_note
        assert result.verification_summary()["unchecked"] == 1

    def test_wrong_engine_result_is_flagged(self):
        """A doctored engine replay must be caught, not rewarded."""
        from repro.datasets.microbench import microbench_catalog

        catalog = microbench_catalog(256, 8, seed=5)
        sql = "SELECT SUM(A.Val) as s, B.Val FROM A, B " \
              "WHERE A.ID = B.ID GROUP BY B.Val;"
        oracle = create_engine("reference", catalog)
        rows = oracle.execute(sql).require_table().rows()
        from repro.bench.verify import canonical_sorted

        doctored = [(r[0] * 1.5, *r[1:]) for r in rows]
        error = rows_match(canonical_sorted(doctored),
                           canonical_sorted(rows), rel=2e-3)
        assert error is not None


class TestRunnerCli:
    def test_run_writes_json_and_passes_gate(self, tmp_path, monkeypatch):
        from repro.bench import run as bench_run

        monkeypatch.setenv("SOURCE_DATE_EPOCH", "946684800")
        out = tmp_path / "bench.json"
        status = bench_run.main([
            "--profile", "smoke", "--experiments", "tables2_3,table4",
            "--json", str(out), "--quiet",
        ])
        assert status == 0
        report = BenchReport.load(str(out))
        assert report.profile == "smoke"
        assert report.generated_at.startswith("2000-01-01")
        assert report.verification_summary()["mismatched"] == 0
        assert report.verification_summary()["unchecked"] == 0

        # gate the run against its own report: pass
        status = bench_run.main([
            "--profile", "smoke", "--experiments", "tables2_3,table4",
            "--quiet", "--baseline", str(out),
        ])
        assert status == 0

    def test_regress_cli_exit_codes(self, tmp_path):
        from repro.bench import regress

        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        _toy_report().write(str(current))
        BenchReport(
            profile="smoke",
            experiments=[_toy_experiment(seconds=(0.5, 1.0))],
        ).write(str(baseline))
        # current is 2x slower than baseline
        assert regress.main([str(current), str(baseline)]) == EXIT_SLOWDOWN
        # swapped: current is faster, passes
        assert regress.main([str(baseline), str(current)]) == EXIT_OK


class TestEnvironmentFingerprint:
    def test_contains_toolchain_versions(self):
        import numpy
        import platform

        env = BenchReport(profile="smoke").environment
        assert env["numpy"] == numpy.__version__
        assert env["python"] == platform.python_version()
        assert "platform" in env


class TestReportingDate:
    def test_experiments_header_is_reproducible(self, monkeypatch):
        from repro.bench.reporting import HEADER

        monkeypatch.setenv("SOURCE_DATE_EPOCH", "946684800")
        rendered = HEADER.format(today=report_date())
        assert "2000-01-01" in rendered

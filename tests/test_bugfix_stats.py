"""Regression tests for the stats/pruning bugs the parallel work exposed.

Three bugs, one suite:

1. **Negative literals defeat pruning** — the parser encodes ``-5`` as
   ``(0 - 5)``; neither the binder nor the chunk-pruning statistics used
   to const-evaluate that ``BinaryOp``, so ``lo_quantity < -5`` scanned
   every chunk of an all-positive column.  Fixed by constant folding in
   the binder plus const-evaluation inside the statistics helpers.
2. **Empty columns fabricate statistics** — a zero-row column reported
   ``min=max=0.0``, and an empty table materialized one scannable
   zero-row chunk; predicates like ``a = 0`` then *kept* provably empty
   chunks and selectivity estimates trusted fake bounds.  Fixed:
   ``n_rows == 0`` stats prune unconditionally and never feed
   selectivity; empty tables have zero chunks.
3. **Ungrouped aggregates over zero rows dropped the result row** —
   SQL returns one row (COUNT = 0; the NULL-free storage model renders
   SUM/AVG/MIN/MAX as 0.0).  Fixed across the batch executor, the
   streaming aggregator, the relational estimator and the TCU grid
   harvest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ssb import ssb_catalog
from repro.engine import create_engine
from repro.engine.reference import ReferenceEngine
from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Literal,
    fold_constants,
)
from repro.sql.binder import bind
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.storage.chunk import ChunkedTable
from repro.storage.column import Column
from repro.storage.statistics import (
    DEFAULT_SELECTIVITY,
    compute_stats,
    predicate_can_match,
    predicate_selectivity,
)
from repro.storage.table import Table
from repro.storage.types import DataType


def _catalog_with(name: str, data: dict) -> Catalog:
    catalog = Catalog()
    catalog.register(Table.from_dict(name, data))
    return catalog


# --------------------------------------------------------------------------- #
# Bug 1: negative literals vs constant folding and pruning
# --------------------------------------------------------------------------- #


class TestNegativeLiteralFolding:
    def test_parser_unary_minus_folds_in_binder(self):
        statement = parse("SELECT a FROM t WHERE a < -5;")
        catalog = _catalog_with("t", {"a": np.arange(1, 100)})
        bound = bind(statement, catalog)
        (predicate,) = bound.filters["t"]
        assert isinstance(predicate, Comparison)
        assert isinstance(predicate.right, Literal)
        assert float(predicate.right.value) == -5.0

    def test_fold_constants_arithmetic(self):
        # (0 - 5) -> -5.0; folding mirrors runtime float64 arithmetic.
        expr = BinaryOp("-", Literal(0), Literal(5))
        folded = fold_constants(expr)
        assert isinstance(folded, Literal) and folded.value == -5.0
        nested = BinaryOp("*", BinaryOp("+", Literal(2), Literal(3)),
                          Literal(4))
        assert fold_constants(nested).value == 20.0
        # Zero divisors never fold: the runtime has special-case
        # semantics (nan / identity) that a folded constant would lose.
        div = BinaryOp("/", Literal(1), Literal(0))
        assert isinstance(fold_constants(div), BinaryOp)
        mod = BinaryOp("%", Literal(1), Literal(0))
        assert isinstance(fold_constants(mod), BinaryOp)
        # Non-constant subtrees pass through untouched.
        ref = ColumnRef(None, "a")
        mixed = BinaryOp("+", ref, Literal(1))
        assert fold_constants(mixed) is mixed

    def test_negative_literal_prunes_every_chunk(self):
        """The headline regression: `lo_quantity < -5` over an
        all-positive column must prune all chunks, scanning none."""
        catalog = _catalog_with("t", {"a": np.arange(1, 4097)})
        num_chunks = ChunkedTable(catalog.get("t"), 256).num_chunks
        assert num_chunks == 16
        engine = ReferenceEngine(catalog, streaming=True, chunk_rows=256)
        result = engine.execute("SELECT COUNT(*) AS c FROM t WHERE a < -5")
        assert result.extra["chunks_pruned"] == num_chunks
        assert result.extra["chunks_scanned"] == 0
        assert int(result.table.column("c").data[0]) == 0

    def test_statistics_const_evaluate_binary_ops(self):
        """Belt and braces: predicates built without the binder's folding
        pass (direct AST construction) still prune and price."""
        stats = compute_stats(Column(np.arange(1, 100), DataType.INT64))
        ref = ColumnRef(None, "a")
        minus_five = BinaryOp("-", Literal(0), Literal(5))
        predicate = Comparison("<", ref, minus_five)
        stats_of = (
            lambda expr: stats if isinstance(expr, ColumnRef) else None
        )
        assert not predicate_can_match(predicate, stats_of)
        assert predicate_selectivity(predicate, stats_of) == 0.0


# --------------------------------------------------------------------------- #
# Bug 2: empty columns / empty tables
# --------------------------------------------------------------------------- #


class TestEmptyTableStats:
    def test_empty_column_stats_are_inert(self):
        stats = compute_stats(
            Column(np.array([], dtype=np.int64), DataType.INT64)
        )
        assert stats.n_rows == 0
        ref = ColumnRef(None, "a")
        stats_of = (
            lambda expr: stats if isinstance(expr, ColumnRef) else None
        )
        # The fabricated min=max=0.0 bounds must never *keep* a chunk:
        # a zero-row chunk satisfies no predicate.
        assert not predicate_can_match(Comparison("=", ref, Literal(0)),
                                       stats_of)
        assert not predicate_can_match(Comparison("<", ref, Literal(10)),
                                       stats_of)
        # ... and must never drive a selectivity estimate.
        sel = predicate_selectivity(Comparison("=", ref, Literal(0)),
                                    stats_of)
        assert sel == DEFAULT_SELECTIVITY

    def test_empty_table_has_no_chunks(self):
        table = Table.from_dict("t", {"a": np.array([], dtype=np.int64)})
        assert ChunkedTable(table, 64).num_chunks == 0

    @pytest.mark.parametrize("engine_name",
                             ["reference", "ydb", "monetdb", "tcudb"])
    def test_empty_table_end_to_end(self, engine_name):
        catalog = _catalog_with("t", {"a": np.array([], dtype=np.int64),
                                      "b": np.array([], dtype=np.float64)})
        engine = create_engine(engine_name, catalog)
        projected = engine.execute("SELECT a FROM t WHERE a = 0")
        assert projected.n_rows == 0
        grouped = engine.execute(
            "SELECT a, COUNT(*) AS c FROM t GROUP BY a"
        )
        assert grouped.n_rows == 0
        ungrouped = engine.execute(
            "SELECT COUNT(*) AS c, SUM(b) AS s FROM t"
        )
        assert ungrouped.n_rows == 1, engine_name
        assert int(ungrouped.table.column("c").data[0]) == 0
        assert float(ungrouped.table.column("s").data[0]) == 0.0


# --------------------------------------------------------------------------- #
# Bug 3: ungrouped aggregates over zero qualifying rows
# --------------------------------------------------------------------------- #


class TestZeroRowUngroupedAggregates:
    SQL = ("SELECT COUNT(*) AS c, SUM(a) AS s, AVG(a) AS v, "
           "MIN(a) AS mn, MAX(a) AS mx FROM t WHERE a > 1000")

    def _catalog(self):
        return _catalog_with("t", {"a": np.arange(1, 200)})

    @pytest.mark.parametrize("engine_name",
                             ["reference", "ydb", "monetdb", "tcudb"])
    def test_one_row_count_zero(self, engine_name):
        engine = create_engine(engine_name, self._catalog())
        result = engine.execute(self.SQL)
        assert result.n_rows == 1, engine_name
        table = result.require_table()
        assert int(table.column("c").data[0]) == 0
        for name in ("s", "v", "mn", "mx"):
            assert float(table.column(name).data[0]) == 0.0, (engine_name,
                                                              name)

    def test_streaming_executor(self):
        engine = ReferenceEngine(self._catalog(), streaming=True,
                                 chunk_rows=32)
        result = engine.execute(self.SQL)
        assert result.n_rows == 1
        assert int(result.table.column("c").data[0]) == 0

    def test_tcu_native_path_synthesizes_the_row(self):
        """A join+aggregate that matches zero pairs must return the row
        from the TCU grid harvest itself (not only via fallback)."""
        ssb = ssb_catalog(scale_factor=1, rows_per_sf=2000, seed=7)
        engine = create_engine("tcudb", ssb)
        result = engine.execute(
            "SELECT SUM(lo_extendedprice * lo_discount) AS revenue "
            "FROM lineorder, ddate "
            "WHERE lo_orderdate = d_datekey AND d_year = 1888"
        )
        assert result.extra.get("executed_by") == "TCU"
        assert result.n_rows == 1
        assert float(result.table.column("revenue").data[0]) == 0.0

    def test_grouped_zero_rows_still_empty(self):
        for engine_name in ("reference", "ydb", "tcudb"):
            engine = create_engine(engine_name, self._catalog())
            result = engine.execute(
                "SELECT a, COUNT(*) AS c FROM t WHERE a > 1000 GROUP BY a"
            )
            assert result.n_rows == 0, engine_name

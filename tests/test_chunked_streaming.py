"""Chunked columnar storage + streaming execution contracts.

The morsel-driven refactor must be *invisible* to answers: chunked
storage on vs. the legacy contiguous path (both in the oracle and in
TCUDB) produce identical results over the fuzz corpus, chunk pruning
never drops qualifying rows, the streaming hybrid pre-stage turns the
historical ANALYTIC ``kind="mode"`` fallbacks into ``TCU-hybrid``
executions with exact row counts, unmaterialized chain steps price from
exact per-step cardinalities, and the bench verifier's sampled streaming
replay verifies paper-scale catalogs it previously skipped.
"""

from __future__ import annotations

import numpy as np
import pytest

from differential_utils import assert_results_match
from repro.bench.harness import SeriesPoint
from repro.bench.verify import OracleVerifier, result_rows, sampled_catalog
from repro.common.errors import BindError, PlanError, StorageError
from repro.common.rng import make_rng
from repro.datasets.ssb import ssb_catalog
from repro.engine.base import ExecutionMode
from repro.engine.reference import ReferenceEngine
from repro.engine.tcudb import TCUDBEngine, TCUDBOptions
from repro.engine.tcudb.ops import FallbackRequired, PhysicalStage
from repro.engine.ydb import YDBEngine
from repro.sql.ast_nodes import Between, ColumnRef, Comparison, InList, Literal
from repro.sql.binder import bind
from repro.sql.parser import parse
from repro.sql.planner import plan_relation
from repro.storage import (
    Catalog,
    ChunkedTable,
    ColumnStats,
    Table,
    chunk_rows_policy,
    predicate_can_match,
)
from test_fuzz_queries import FUZZ_SEED, QueryGenerator

TCU_REL = 2e-3


@pytest.fixture(scope="module")
def fuzz_catalog():
    return ssb_catalog(scale_factor=1, rows_per_sf=2000, seed=13)


def fuzz_queries(n: int) -> list[str]:
    generator = QueryGenerator(make_rng(FUZZ_SEED))
    return [generator.generate() for _ in range(n)]


# --------------------------------------------------------------------------- #
# Chunked storage
# --------------------------------------------------------------------------- #


class TestChunkedTable:
    def test_partitioning_and_views(self):
        table = Table.from_dict("t", {"a": np.arange(100)})
        chunked = table.chunked(16)
        assert chunked.num_chunks == 7
        assert [c.num_rows for c in chunked] == [16] * 6 + [4]
        # Chunks are zero-copy views over the contiguous columns.
        assert np.shares_memory(chunked.chunks[0].column("a").data,
                                table.column("a").data)
        assert chunked.to_contiguous() is table

    def test_concatenated_chunks_reproduce_the_table(self):
        rng = np.random.default_rng(5)
        table = Table.from_dict("t", {
            "a": rng.integers(0, 50, 333),
            "s": [f"v{i % 9}" for i in range(333)],
        })
        chunked = table.chunked(64)
        rebuilt = np.concatenate([c.column("a").data for c in chunked])
        np.testing.assert_array_equal(rebuilt, table.column("a").data)

    def test_per_chunk_stats(self):
        table = Table.from_dict("t", {"a": np.arange(100)})
        stats = table.chunked(25).chunks[2].stats("a")
        assert (stats.min_value, stats.max_value) == (50.0, 74.0)
        assert stats.n_distinct == 25 and stats.n_rows == 25

    def test_chunk_cache_and_policy(self, monkeypatch):
        table = Table.from_dict("t", {"a": np.arange(10)})
        assert table.chunked(4) is table.chunked(4)
        monkeypatch.setenv("REPRO_CHUNK_ROWS", "3")
        assert chunk_rows_policy() == 3
        assert chunk_rows_policy(7) == 7  # explicit override wins
        with pytest.raises(StorageError):
            chunk_rows_policy(0)

    def test_empty_table_has_zero_chunks(self):
        # A zero-row table contributes no chunks at all: nothing to scan,
        # nothing for stats to fabricate bounds over (the old single
        # empty chunk reported min=max=0.0 and defeated pruning).
        table = Table.from_dict("t", {"a": np.array([], dtype=np.int64)})
        chunked = ChunkedTable(table, 8)
        assert chunked.num_chunks == 0
        assert chunked.chunks == []


class TestChunkPruning:
    STATS = ColumnStats(10.0, 20.0, 5, 16)

    def _stats_of(self, expr):
        return self.STATS if isinstance(expr, ColumnRef) else None

    def can(self, predicate) -> bool:
        return predicate_can_match(predicate, self._stats_of)

    def test_comparisons(self):
        ref = ColumnRef(None, "a")
        assert not self.can(Comparison("=", ref, Literal(25)))
        assert self.can(Comparison("=", ref, Literal(15)))
        assert not self.can(Comparison("<", ref, Literal(10)))
        assert self.can(Comparison("<=", ref, Literal(10)))
        assert not self.can(Comparison(">", ref, Literal(20)))
        assert self.can(Comparison(">=", ref, Literal(20)))
        # Mirrored literal-op-column comparisons prune symmetrically:
        # "25 < a" is empty when max(a) == 20, "15 < a" is satisfiable.
        assert not self.can(Comparison("<", Literal(25), ref))
        assert self.can(Comparison("<", Literal(15), ref))

    def test_between_and_in(self):
        ref = ColumnRef(None, "a")
        assert not self.can(Between(ref, Literal(30), Literal(40)))
        assert self.can(Between(ref, Literal(18), Literal(40)))
        assert not self.can(
            InList(ref, (Literal(1), Literal(2), Literal(30)))
        )
        assert self.can(InList(ref, (Literal(1), Literal(12))))

    def test_negation_is_conservative(self):
        from repro.sql.ast_nodes import Negation

        ref = ColumnRef(None, "a")
        inner = Comparison("=", ref, Literal(15))
        assert self.can(Negation(inner))

    def test_conjunction_disjunction(self):
        from repro.sql.ast_nodes import Conjunction, Disjunction

        ref = ColumnRef(None, "a")
        empty = Comparison("=", ref, Literal(25))
        full = Comparison("=", ref, Literal(15))
        assert not self.can(Conjunction((full, empty)))
        assert self.can(Conjunction((full, full)))
        assert self.can(Disjunction((empty, full)))
        assert not self.can(Disjunction((empty, empty)))

    def test_pruning_never_drops_rows(self):
        """A selective scan over a clustered column prunes chunks but
        returns exactly the contiguous answer."""
        catalog = Catalog()
        catalog.register(Table.from_dict("t", {
            "k": np.arange(5000),
            "v": np.arange(5000) % 11,
        }))
        sql = ("SELECT SUM(t.v) AS s, COUNT(*) AS c FROM t "
               "WHERE t.k BETWEEN 900 AND 1100")
        legacy = ReferenceEngine(catalog).execute(sql)
        streamed = ReferenceEngine(catalog, streaming=True,
                                   chunk_rows=128).execute(sql)
        assert streamed.extra["chunks_pruned"] > 0
        assert result_rows(streamed) == result_rows(legacy)


# --------------------------------------------------------------------------- #
# Streaming oracle == legacy contiguous oracle (ablation, both paths)
# --------------------------------------------------------------------------- #


def test_streaming_oracle_equals_contiguous(fuzz_catalog):
    legacy = ReferenceEngine(fuzz_catalog)
    streamed = ReferenceEngine(fuzz_catalog, streaming=True, chunk_rows=97)
    for index, sql in enumerate(fuzz_queries(60)):
        assert_results_match(
            streamed.execute(sql), legacy.execute(sql),
            context=f"stream fuzz #{index}: {sql}",
        )


def test_tcudb_chunked_equals_contiguous(fuzz_catalog):
    """TCUDB with chunked execution (tiny chunks, so scans, folds, grid
    accumulation and the streaming pre-stage all actually chunk) equals
    the legacy contiguous ablation over the fuzz corpus."""
    chunked = TCUDBEngine(fuzz_catalog,
                          options=TCUDBOptions(chunk_rows=64))
    legacy = TCUDBEngine(
        fuzz_catalog,
        options=TCUDBOptions(chunked_execution=False,
                             stream_prestage=False),
    )
    for index, sql in enumerate(fuzz_queries(50)):
        assert_results_match(
            chunked.execute(sql), legacy.execute(sql), rel=TCU_REL,
            context=f"chunked fuzz #{index}: {sql}",
        )


# --------------------------------------------------------------------------- #
# Streaming hybrid pre-stage: ANALYTIC mode
# --------------------------------------------------------------------------- #


@pytest.fixture
def chain_catalog():
    rng = np.random.default_rng(7)
    catalog = Catalog()
    catalog.register(Table.from_dict("t1", {
        "k1": rng.integers(0, 6, 40),
        "v": rng.integers(0, 20, 40).astype(float),
    }))
    catalog.register(Table.from_dict("t2", {
        "k1": rng.integers(0, 6, 30),
        "k2": rng.integers(0, 5, 30),
    }))
    catalog.register(Table.from_dict("t3", {
        "k2": rng.integers(0, 5, 25),
        "g": rng.integers(0, 3, 25),
    }))
    return catalog


CHAIN_AGG_SQL = (
    "SELECT SUM(t1.v) AS s, t3.g FROM t1, t2, t3 "
    "WHERE t1.k1 = t2.k1 AND t2.k2 = t3.k2 GROUP BY t3.g"
)


class TestStreamingPrestage:
    def test_analytic_hybrid_executes_instead_of_mode_fallback(
        self, chain_catalog
    ):
        legacy = TCUDBEngine(
            chain_catalog, mode=ExecutionMode.ANALYTIC,
            options=TCUDBOptions(stream_prestage=False),
        ).execute(CHAIN_AGG_SQL)
        assert legacy.extra["executed_by"] == "YDB-fallback"
        assert legacy.extra["fallback_kind"] == "mode"
        streamed = TCUDBEngine(
            chain_catalog, mode=ExecutionMode.ANALYTIC
        ).execute(CHAIN_AGG_SQL)
        assert streamed.extra["executed_by"] == "TCU-hybrid"
        assert not streamed.extra.get("fallback_reason")
        real = TCUDBEngine(chain_catalog).execute(CHAIN_AGG_SQL)
        assert streamed.n_rows == real.n_rows

    def test_budget_overrun_falls_back_by_cost(self, chain_catalog):
        engine = TCUDBEngine(chain_catalog, mode=ExecutionMode.ANALYTIC)
        bound = bind(parse(CHAIN_AGG_SQL), chain_catalog)
        stage = PhysicalStage(id="prestage", tree=plan_relation(bound),
                              streaming=True, budget_rows=1)
        ctx = engine._context(bound)
        with pytest.raises(FallbackRequired) as info:
            stage.execute(ctx)
        assert info.value.kind == "cost"


# --------------------------------------------------------------------------- #
# Exact chain cardinalities in ANALYTIC mode
# --------------------------------------------------------------------------- #


def test_analytic_chain_counts_are_exact():
    """Multi-way chain steps past the first used to estimate from
    unfiltered key counts; the multiplicity-threaded chain now reports
    the exact intermediate cardinality in ANALYTIC mode."""
    rng = np.random.default_rng(11)
    catalog = Catalog()
    # A filtered first table makes the unfiltered estimate wrong.
    catalog.register(Table.from_dict("a", {
        "k": rng.integers(0, 8, 120),
        "f": rng.integers(0, 10, 120),
    }))
    catalog.register(Table.from_dict("b", {
        "k": rng.integers(0, 8, 90),
        "j": rng.integers(0, 6, 90),
    }))
    catalog.register(Table.from_dict("c", {
        "j": rng.integers(0, 6, 70),
        "w": rng.integers(0, 5, 70),
    }))
    sql = ("SELECT a.k, c.w FROM a, b, c "
           "WHERE a.k = b.k AND b.j = c.j AND a.f < 3")
    real = TCUDBEngine(catalog).execute(sql)
    analytic = TCUDBEngine(catalog, mode=ExecutionMode.ANALYTIC).execute(sql)
    if analytic.extra.get("fallback_reason") or real.extra.get(
        "fallback_reason"
    ):
        pytest.skip("chain did not stay on the TCU path on this catalog")
    assert analytic.n_rows == real.n_rows


# --------------------------------------------------------------------------- #
# Sampled / streaming oracle replay (bench verifier)
# --------------------------------------------------------------------------- #


class TestSampledVerification:
    def test_sampled_catalog_is_deterministic_and_bounded(self):
        catalog = ssb_catalog(scale_factor=1, rows_per_sf=20_000, seed=9)
        first, notes1 = sampled_catalog(catalog, 2048)
        second, notes2 = sampled_catalog(catalog, 2048)
        assert notes1 == notes2
        assert first.get("lineorder").num_rows < catalog.get(
            "lineorder"
        ).num_rows
        np.testing.assert_array_equal(
            first.get("lineorder").column("lo_revenue").data,
            second.get("lineorder").column("lo_revenue").data,
        )

    def test_stream_policy_verifies_paper_scale_points(self):
        catalog = ssb_catalog(scale_factor=1, rows_per_sf=20_000, seed=9)
        verifier = OracleVerifier(policy="stream", sample_rows=2048)
        sql = ("SELECT SUM(lo_revenue) AS r, d_year FROM lineorder, ddate "
               "WHERE lo_orderdate = d_datekey GROUP BY d_year")
        point = SeriesPoint(config="sf1", engine="TCUDB", seconds=1.0)
        verifier.verify_query(point, "TCUDB", catalog, sql)
        assert point.verified is True
        assert point.verify_kind == "oracle"
        assert "sampled chunks" in point.verify_note

    def test_strata_are_disjoint_and_cover_more_chunks(self):
        catalog = ssb_catalog(scale_factor=1, rows_per_sf=20_000, seed=9)
        phase0, _ = sampled_catalog(catalog, 2048, phase=0)
        phase1, _ = sampled_catalog(catalog, 2048, phase=1)
        keys0 = set(phase0.get("lineorder").column("lo_orderkey").data)
        keys1 = set(phase1.get("lineorder").column("lo_orderkey").data)
        # Different phases sample different chunk strides of the fact
        # table; the strata must not be the same sample.
        assert keys0 != keys1

    def test_stratified_replay_reports_disagreement_bound(self):
        catalog = ssb_catalog(scale_factor=1, rows_per_sf=20_000, seed=9)
        verifier = OracleVerifier(policy="stream", sample_rows=2048,
                                  strata=3)
        sql = ("SELECT SUM(lo_revenue) AS r, d_year FROM lineorder, ddate "
               "WHERE lo_orderdate = d_datekey GROUP BY d_year")
        point = SeriesPoint(config="sf1", engine="TCUDB", seconds=1.0)
        verifier.verify_query(point, "TCUDB", catalog, sql)
        assert point.verified is True
        assert "3 strata" in point.verify_note
        assert "disagreement<=" in point.verify_note

    def test_full_policy_unchanged(self, fuzz_catalog):
        verifier = OracleVerifier()
        sql = ("SELECT COUNT(*) AS c FROM lineorder, ddate "
               "WHERE lo_orderdate = d_datekey")
        point = SeriesPoint(config="x", engine="YDB", seconds=1.0)
        verifier.verify_query(point, "YDB", fuzz_catalog, sql)
        assert point.verified is True and point.verify_note == ""

    def test_disabled_still_skips(self, fuzz_catalog):
        verifier = OracleVerifier(enabled=False, policy="stream")
        point = SeriesPoint(config="x", engine="YDB", seconds=1.0)
        verifier.verify_query(point, "YDB", fuzz_catalog, "SELECT 1 FROM x")
        assert point.verified is None
        assert point.verify_note == "unverified (profile)"


# --------------------------------------------------------------------------- #
# Expression GROUP BY (satellite)
# --------------------------------------------------------------------------- #


class TestExpressionGroupBy:
    SQL = (
        "SELECT d_year % 10 AS decade, SUM(lo_revenue) AS r, COUNT(*) AS c "
        "FROM lineorder, ddate WHERE lo_orderdate = d_datekey "
        "GROUP BY d_year % 10 ORDER BY decade"
    )

    def test_all_engines_agree(self, fuzz_catalog):
        oracle = ReferenceEngine(fuzz_catalog).execute(self.SQL)
        assert oracle.n_rows > 1
        tcu = TCUDBEngine(fuzz_catalog).execute(self.SQL)
        ydb = YDBEngine(fuzz_catalog).execute(self.SQL)
        assert tcu.extra["executed_by"] == "TCU-hybrid"
        assert_results_match(tcu, oracle, rel=TCU_REL)
        assert_results_match(ydb, oracle)

    def test_streaming_oracle_handles_group_exprs(self, fuzz_catalog):
        legacy = ReferenceEngine(fuzz_catalog).execute(self.SQL)
        streamed = ReferenceEngine(fuzz_catalog, streaming=True,
                                   chunk_rows=97).execute(self.SQL)
        assert_results_match(streamed, legacy)

    def test_having_on_group_expression(self, fuzz_catalog):
        sql = (
            "SELECT d_year % 10 AS decade, COUNT(*) AS c "
            "FROM lineorder, ddate WHERE lo_orderdate = d_datekey "
            "GROUP BY d_year % 10 HAVING d_year % 10 > 4 ORDER BY decade"
        )
        oracle = ReferenceEngine(fuzz_catalog).execute(sql)
        tcu = TCUDBEngine(fuzz_catalog).execute(sql)
        assert_results_match(tcu, oracle, rel=TCU_REL)
        decades = [row[0] for row in oracle.require_table().rows()]
        assert decades and all(d > 4 for d in decades)

    def test_single_table_group_expression(self, fuzz_catalog):
        sql = ("SELECT d_year % 3 AS m, COUNT(*) AS c FROM ddate "
               "GROUP BY d_year % 3 ORDER BY m")
        oracle = ReferenceEngine(fuzz_catalog).execute(sql)
        tcu = TCUDBEngine(fuzz_catalog).execute(sql)
        assert_results_match(tcu, oracle, rel=TCU_REL)

    def test_aggregate_in_group_by_rejected(self, fuzz_catalog):
        with pytest.raises(BindError):
            ReferenceEngine(fuzz_catalog).execute(
                "SELECT COUNT(*) AS c FROM ddate GROUP BY SUM(d_year)"
            )

    def test_non_grouped_column_still_rejected(self, fuzz_catalog):
        with pytest.raises(PlanError):
            ReferenceEngine(fuzz_catalog).execute(
                "SELECT d_year AS y, COUNT(*) AS c FROM ddate "
                "GROUP BY d_year % 10"
            )


# --------------------------------------------------------------------------- #
# Residual-fact epilogue (satellite, fusion rule)
# --------------------------------------------------------------------------- #


class TestResidualFillFusion:
    SQL = (
        "SELECT SUM(lo_revenue) AS s, c_region FROM lineorder, ddate, "
        "customer WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey "
        "AND (lo_discount > 5 OR d_year = 1995) GROUP BY c_region"
    )

    def test_mask_folds_into_value_fill(self, fuzz_catalog):
        fused = TCUDBEngine(fuzz_catalog).execute(self.SQL)
        unfused = TCUDBEngine(
            fuzz_catalog, options=TCUDBOptions(fusion=False)
        ).execute(self.SQL)
        oracle = ReferenceEngine(fuzz_catalog).execute(self.SQL)
        assert fused.extra["executed_by"] == "TCU"
        fused_listing = fused.extra["program_listing"]
        assert "MaskApply[residual-fact]" not in fused_listing
        assert "epilogue(" in fused_listing
        assert "MaskApply[residual-fact]" in unfused.extra["program_listing"]
        assert any("residual-fill" in note
                   for note in fused.extra["program"].notes)
        assert_results_match(fused, oracle, rel=TCU_REL)
        assert_results_match(unfused, oracle, rel=TCU_REL)
        # The fused masked fill charges one riding pass; it must never
        # cost more simulated time than the standalone mask.
        assert fused.seconds <= unfused.seconds + 1e-12

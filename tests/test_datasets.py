"""Dataset generators: schemas, cardinalities, referential integrity."""

import numpy as np
import pytest

from repro.datasets import (
    BEER_DISTINCTS,
    BEER_ROWS_A,
    BEER_ROWS_B,
    ITUNES_DISTINCTS,
    PAPER_TABLE4,
    beer_catalog,
    dense_matrix_from_table,
    generate_microbench_tables,
    graph_catalog,
    itunes_catalog,
    matmul_catalog,
    reduce_graph,
    reduced_road_graph,
    ssb_catalog,
    synthetic_road_network,
)
from repro.datasets.ssb import N_DATES


class TestMicrobench:
    def test_shapes_and_domains(self):
        a, b = generate_microbench_tables(1000, 32, seed=1)
        assert a.num_rows == b.num_rows == 1000
        assert a.stats("id").n_distinct <= 32
        assert a.stats("id").min_value >= 0
        assert a.stats("id").max_value < 32

    def test_deterministic(self):
        a1, _ = generate_microbench_tables(100, 8, seed=7)
        a2, _ = generate_microbench_tables(100, 8, seed=7)
        assert a1.rows() == a2.rows()

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            generate_microbench_tables(0, 4)


class TestMatmul:
    def test_dense_encoding_roundtrip(self):
        catalog = matmul_catalog(8, seed=3)
        a = catalog.get("a")
        assert a.num_rows == 64
        dense = dense_matrix_from_table(a, 8)
        assert dense.shape == (8, 8)

    def test_sparse_density(self):
        catalog = matmul_catalog(16, seed=3, density=0.25)
        assert catalog.get("a").num_rows == 64  # 16*16*0.25


class TestSSB:
    @pytest.fixture(scope="class")
    def catalog(self):
        return ssb_catalog(scale_factor=1, rows_per_sf=5000, seed=2)

    def test_all_tables_present(self, catalog):
        for name in ("lineorder", "customer", "supplier", "part", "ddate"):
            assert catalog.has(name)

    def test_date_dimension(self, catalog):
        ddate = catalog.get("ddate")
        assert ddate.num_rows == N_DATES
        years = ddate.stats("d_year")
        assert (years.min_value, years.max_value) == (1992, 1998)

    def test_foreign_keys_resolve(self, catalog):
        lineorder = catalog.get("lineorder")
        for fk, dim, pk in (
            ("lo_custkey", "customer", "c_custkey"),
            ("lo_suppkey", "supplier", "s_suppkey"),
            ("lo_partkey", "part", "p_partkey"),
            ("lo_orderdate", "ddate", "d_datekey"),
        ):
            fk_values = set(np.unique(lineorder.column(fk).data))
            pk_values = set(catalog.get(dim).column(pk).data.tolist())
            assert fk_values <= pk_values, fk

    def test_revenue_consistent_with_discount(self, catalog):
        lineorder = catalog.get("lineorder").to_dict()
        expected = (
            lineorder["lo_extendedprice"] * (100 - lineorder["lo_discount"])
            // 100
        )
        assert np.array_equal(lineorder["lo_revenue"], expected)

    def test_scale_factor_scales_fact_table(self):
        sf1 = ssb_catalog(1, rows_per_sf=5000, seed=2)
        sf4 = ssb_catalog(4, rows_per_sf=5000, seed=2)
        assert catalog_rows(sf4) == pytest.approx(4 * catalog_rows(sf1),
                                                  rel=0.01)


def catalog_rows(catalog):
    return catalog.get("lineorder").num_rows


class TestEM:
    def test_beer_row_counts(self):
        catalog = beer_catalog(seed=1)
        assert catalog.get("table_a").num_rows == BEER_ROWS_A
        assert catalog.get("table_b").num_rows == BEER_ROWS_B

    def test_beer_distinct_counts_exact(self):
        # Paper Table 2's cardinalities, over the union of both tables.
        catalog = beer_catalog(seed=1)
        a, b = catalog.get("table_a"), catalog.get("table_b")
        for attribute, target in BEER_DISTINCTS.items():
            union = np.union1d(a.column(attribute).values(),
                               b.column(attribute).values())
            assert union.size == target, attribute

    def test_itunes_distinct_counts_exact(self):
        catalog = itunes_catalog(seed=1)
        a, b = catalog.get("table_a"), catalog.get("table_b")
        for attribute, target in ITUNES_DISTINCTS.items():
            union = np.union1d(a.column(attribute).values(),
                               b.column(attribute).values())
            assert union.size == target, attribute

    def test_scaled_variant_larger(self):
        small = itunes_catalog(seed=1)
        scaled = itunes_catalog(seed=1, scaled=True)
        assert (scaled.get("table_b").num_rows
                == 2 * small.get("table_b").num_rows)


class TestGraphs:
    def test_road_network_connected_backbone(self):
        graph = synthetic_road_network(500, seed=1)
        # Symmetric directed edges.
        forward = set(zip(graph.src.tolist(), graph.dst.tolist()))
        assert all((d, s) in forward for s, d in forward)
        # Degree ratio near the SNAP value.
        assert 2.0 < graph.edge_node_ratio < 3.5

    def test_reduce_graph_relabels_densely(self):
        base = synthetic_road_network(1000, seed=2)
        reduced = reduce_graph(base, 300)
        assert reduced.n_nodes == 300
        if reduced.n_edges:
            assert reduced.src.max() < 300
            assert reduced.dst.max() < 300

    def test_reduced_sizes_near_paper_table4(self):
        # Edge counts within 40% of Table 4 and ratios rising with size.
        ratios = []
        for size in (1024, 4096, 8192):
            graph = reduced_road_graph(size, seed=3)
            paper_edges = PAPER_TABLE4[size]
            assert graph.n_edges == pytest.approx(paper_edges, rel=0.4)
            ratios.append(graph.edge_node_ratio)
        assert ratios[0] < ratios[-1] + 0.5  # roughly non-decreasing

    def test_graph_catalog_tables(self):
        graph = reduced_road_graph(256, seed=4)
        catalog = graph_catalog(graph)
        assert catalog.get("node").num_rows == graph.n_nodes
        assert catalog.get("edge").num_rows == graph.n_edges

"""Differential suite: TCUDB and YDB against the Reference oracle.

A shared corpus of 50+ SQL queries — the 13 SSB flights, SSB variants
(MIN/MAX, AVG, HAVING, OR, single-table, arithmetic projections) and the
paper's Q1/Q3/Q4/Q5 micro patterns — executes through ReferenceEngine,
YDBEngine and TCUDBEngine; every engine must return the same sorted row
multiset within fp tolerance (TCUDB may take its fp16 path, hence the
looser relative tolerance there).
"""

from __future__ import annotations

import pytest

from differential_utils import assert_results_match
from repro.datasets.microbench import (
    QUERY_Q1,
    QUERY_Q3,
    QUERY_Q4,
    QUERY_Q5,
    microbench_catalog,
)
from repro.datasets.ssb import ssb_catalog
from repro.engine import create_engine
from repro.workloads.ssb_queries import SSB_QUERIES

# TCUDB's adaptive-precision path may pick fp16; everything else is fp64.
TCU_REL = 2e-3
EXACT_REL = 1e-9


# --------------------------------------------------------------------------- #
# Corpus
# --------------------------------------------------------------------------- #

SSB_VARIANTS: dict[str, str] = {
    # -- single-table shapes ------------------------------------------- #
    "single_projection": """
        SELECT lo_quantity, lo_discount FROM lineorder
        WHERE lo_quantity < 5;
    """,
    "single_expression": """
        SELECT lo_extendedprice * lo_discount AS spread FROM lineorder
        WHERE lo_discount BETWEEN 4 AND 6
        ORDER BY spread DESC LIMIT 20;
    """,
    "single_global_agg": """
        SELECT SUM(lo_revenue) AS r, COUNT(*) AS c, AVG(lo_quantity) AS q
        FROM lineorder;
    """,
    "single_min_max": """
        SELECT MIN(lo_supplycost) AS lo, MAX(lo_supplycost) AS hi
        FROM lineorder;
    """,
    "single_group_count": """
        SELECT d_year, COUNT(*) AS days FROM ddate
        GROUP BY d_year ORDER BY d_year;
    """,
    "single_group_min_max": """
        SELECT d_year, MIN(d_datekey) AS first_key, MAX(d_datekey) AS last_key
        FROM ddate GROUP BY d_year ORDER BY d_year;
    """,
    "single_having": """
        SELECT c_region, COUNT(*) AS n FROM customer
        GROUP BY c_region HAVING COUNT(*) > 20 ORDER BY n DESC, c_region;
    """,
    "single_group_avg": """
        SELECT p_mfgr, AVG(p_partkey) AS avg_key FROM part
        GROUP BY p_mfgr ORDER BY p_mfgr;
    """,
    "single_or_strings": """
        SELECT s_region FROM supplier
        WHERE s_region = 'ASIA' OR s_region = 'EUROPE';
    """,
    "single_or_numeric": """
        SELECT lo_orderkey FROM lineorder
        WHERE lo_quantity < 3 OR lo_quantity > 48
        ORDER BY lo_orderkey LIMIT 50;
    """,
    "single_profit": """
        SELECT SUM(lo_revenue - lo_supplycost) AS profit FROM lineorder
        WHERE lo_discount > 8;
    """,
    "single_group_strings": """
        SELECT d_yearmonth, COUNT(*) AS n FROM ddate
        WHERE d_year = 1994 GROUP BY d_yearmonth ORDER BY d_yearmonth;
    """,
    "single_having_two_keys": """
        SELECT c_nation, c_city, COUNT(*) AS n FROM customer
        GROUP BY c_nation, c_city HAVING COUNT(*) >= 2
        ORDER BY c_nation, c_city LIMIT 25;
    """,
    "single_group_no_agg": """
        SELECT lo_quantity FROM lineorder
        GROUP BY lo_quantity ORDER BY lo_quantity;
    """,
    # -- join variants -------------------------------------------------- #
    "join_min_max": """
        SELECT MIN(lo_extendedprice) AS m, MAX(lo_extendedprice) AS x
        FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey AND d_year = 1993;
    """,
    "join_avg": """
        SELECT AVG(lo_extendedprice * lo_discount) AS r
        FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey AND d_year = 1994
          AND lo_discount BETWEEN 1 AND 3;
    """,
    "join_having_sum": """
        SELECT SUM(lo_revenue) AS revenue, d_year
        FROM lineorder, ddate WHERE lo_orderdate = d_datekey
        GROUP BY d_year HAVING SUM(lo_revenue) > 0 ORDER BY d_year;
    """,
    "join_having_count": """
        SELECT d_year, COUNT(*) AS n
        FROM lineorder, ddate WHERE lo_orderdate = d_datekey
        GROUP BY d_year HAVING COUNT(*) > 100 ORDER BY n DESC, d_year;
    """,
    "join_cross_table_or": """
        SELECT lo_revenue, d_year FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey
          AND (d_year = 1995 OR lo_quantity < 2)
        ORDER BY lo_revenue DESC, d_year LIMIT 30;
    """,
    "join_local_or": """
        SELECT SUM(lo_extendedprice * lo_discount) AS revenue
        FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey AND d_year = 1993
          AND (lo_discount < 2 OR lo_discount > 9);
    """,
    "join_projection_limit": """
        SELECT lo_orderkey, d_month FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey AND d_yearmonthnum = 199406
        ORDER BY lo_orderkey LIMIT 40;
    """,
    "nonequi_projection": """
        SELECT s_suppkey, c_custkey FROM supplier, customer
        WHERE s_suppkey < c_custkey AND c_custkey < 5;
    """,
    "nonequi_agg_fallback": """
        SELECT COUNT(*) AS pairs FROM supplier, customer
        WHERE s_suppkey < c_custkey AND c_custkey < 50;
    """,
    "chain_projection": """
        SELECT c_nation, s_nation FROM customer, lineorder, supplier
        WHERE c_custkey = lo_custkey AND lo_suppkey = s_suppkey
          AND c_region = 'EUROPE' AND s_region = 'ASIA'
        ORDER BY c_nation, s_nation LIMIT 50;
    """,
    "star_expression": """
        SELECT d_year, SUM(lo_extendedprice * lo_discount) AS rev
        FROM lineorder, ddate, supplier
        WHERE lo_orderdate = d_datekey AND lo_suppkey = s_suppkey
          AND s_region = 'AMERICA'
        GROUP BY d_year ORDER BY d_year;
    """,
    "sum_with_constant": """
        SELECT SUM(lo_revenue * 2) AS dbl FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey AND d_year = 1996;
    """,
    "sum_with_division": """
        SELECT SUM(lo_revenue / 100) AS hund FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey AND d_weeknuminyear = 10;
    """,
    "output_arithmetic": """
        SELECT SUM(lo_revenue) - SUM(lo_supplycost) AS margin, d_year
        FROM lineorder, ddate WHERE lo_orderdate = d_datekey
        GROUP BY d_year ORDER BY d_year;
    """,
    "order_by_agg_expr": """
        SELECT SUM(lo_revenue) AS revenue, d_year
        FROM lineorder, ddate WHERE lo_orderdate = d_datekey
        GROUP BY d_year ORDER BY SUM(lo_revenue) DESC, d_year LIMIT 3;
    """,
    "in_lists_numeric": """
        SELECT COUNT(*) AS c FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey AND d_year IN (1992, 1997)
          AND lo_quantity IN (1, 2, 3);
    """,
    "join_group_min_max": """
        SELECT d_year, MIN(lo_revenue) AS mn, MAX(lo_revenue) AS mx
        FROM lineorder, ddate WHERE lo_orderdate = d_datekey
        GROUP BY d_year ORDER BY d_year;
    """,
    "join_having_avg": """
        SELECT s_nation, AVG(lo_quantity) AS q
        FROM lineorder, supplier WHERE lo_suppkey = s_suppkey
        GROUP BY s_nation HAVING AVG(lo_quantity) > 20 ORDER BY s_nation;
    """,
    "q3_variant_years": """
        SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue
        FROM lineorder, customer, supplier, ddate
        WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey
          AND c_region = 'AMERICA' AND s_region = 'ASIA'
          AND d_year BETWEEN 1995 AND 1996
        GROUP BY c_nation, s_nation, d_year
        ORDER BY d_year ASC, revenue DESC;
    """,
    "q4_variant_single_mfgr": """
        SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit
        FROM lineorder, ddate, customer, supplier, part
        WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
          AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
          AND c_region = 'ASIA' AND s_region = 'ASIA'
          AND p_mfgr = 'MFGR#3'
        GROUP BY d_year, c_nation ORDER BY d_year, c_nation;
    """,
    "agg_limit": """
        SELECT COUNT(*) AS c FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey LIMIT 1;
    """,
    "q1_having_on_global": """
        SELECT SUM(lo_extendedprice * lo_discount) AS revenue
        FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey AND d_year = 1993
          AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25
        HAVING COUNT(*) > 0;
    """,
    # -- zero-row / constant-folding shapes (dialect: ungrouped agg over
    #    zero rows returns one COUNT=0 row; grouped returns zero rows) -- #
    "empty_global_agg": """
        SELECT SUM(lo_revenue) AS s, COUNT(*) AS c, AVG(lo_quantity) AS q,
               MIN(lo_discount) AS mn, MAX(lo_discount) AS mx
        FROM lineorder WHERE lo_quantity > 999;
    """,
    "empty_join_global_agg": """
        SELECT SUM(lo_extendedprice * lo_discount) AS revenue
        FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey AND d_year = 1888;
    """,
    "empty_grouped_agg": """
        SELECT d_year, SUM(lo_revenue) AS r FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey AND lo_quantity > 999
        GROUP BY d_year ORDER BY d_year;
    """,
    "negative_literal_filter": """
        SELECT COUNT(*) AS c FROM lineorder WHERE lo_quantity < -5;
    """,
    "negative_literal_range": """
        SELECT SUM(lo_revenue) AS s FROM lineorder
        WHERE lo_discount > -1 AND lo_quantity BETWEEN -10 AND 20;
    """,
}

MICRO_QUERIES: dict[str, str] = {
    "micro_q1": QUERY_Q1,
    "micro_q3": QUERY_Q3,
    "micro_q4": QUERY_Q4,
    "micro_q5": QUERY_Q5,
    "micro_q3_having": (
        "SELECT SUM(A.Val) AS s, B.Val FROM A, B WHERE A.ID = B.ID "
        "GROUP BY B.Val HAVING SUM(A.Val) > 100 ORDER BY s DESC;"
    ),
    "micro_q5_agg": (
        "SELECT COUNT(*) AS pairs, MAX(A.Val) AS hi FROM A, B "
        "WHERE A.ID < B.ID;"
    ),
    "micro_single": (
        "SELECT A.ID, SUM(A.Val) AS s FROM A GROUP BY A.ID "
        "HAVING COUNT(*) >= 1 ORDER BY A.ID;"
    ),
}

CORPUS = (
    [("ssb", name, sql) for name, sql in sorted(SSB_QUERIES.items())]
    + [("ssb", name, sql) for name, sql in SSB_VARIANTS.items()]
    + [("micro", name, sql) for name, sql in MICRO_QUERIES.items()]
)


def test_corpus_size():
    """The checklist demands a corpus of at least 50 queries."""
    assert len(CORPUS) >= 50


# --------------------------------------------------------------------------- #
# Engines (built once per module: TCUDB calibration is not free)
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def catalogs():
    return {
        "ssb": ssb_catalog(scale_factor=1, rows_per_sf=3000, seed=11),
        "micro": microbench_catalog(600, 24, seed=3),
    }


@pytest.fixture(scope="module")
def engines(catalogs):
    return {
        schema: {
            name: create_engine(name, catalog)
            for name in ("reference", "ydb", "tcudb")
        }
        for schema, catalog in catalogs.items()
    }


@pytest.mark.parametrize(
    "schema,name,sql", CORPUS, ids=[f"{s}:{n}" for s, n, _ in CORPUS]
)
def test_engines_match_oracle(engines, schema, name, sql):
    oracle = engines[schema]["reference"].execute(sql)
    ydb = engines[schema]["ydb"].execute(sql)
    tcu = engines[schema]["tcudb"].execute(sql)
    assert_results_match(ydb, oracle, rel=EXACT_REL, context=f"{name} (YDB)")
    assert_results_match(tcu, oracle, rel=TCU_REL, context=f"{name} (TCUDB)")


def test_corpus_exercises_both_tcu_paths(engines):
    """The corpus must cover native TCU execution *and* the fallback."""
    native, fallback = 0, 0
    for schema, _, sql in CORPUS:
        result = engines[schema]["tcudb"].execute(sql)
        if result.extra.get("fallback_reason"):
            fallback += 1
        else:
            native += 1
    assert native >= 10, f"only {native} corpus queries ran natively on TCU"
    assert fallback >= 10, f"only {fallback} corpus queries fell back"


def test_empty_global_aggregate_dialect(engines):
    """Dialect contract (docs/testing.md): a global aggregate over an
    empty input yields the standard single row — COUNT = 0, and (the
    storage layer being NULL-free) SUM/AVG/MIN/MAX = 0.0 where SQL
    would return NULL — and every engine agrees."""
    sql = ("SELECT SUM(lo_revenue) AS s, COUNT(*) AS c FROM lineorder "
           "WHERE lo_quantity > 999")
    for name in ("reference", "ydb", "tcudb"):
        result = engines["ssb"][name].execute(sql)
        assert result.n_rows == 1, name
        assert float(result.table.column("s").data[0]) == 0.0, name
        assert int(result.table.column("c").data[0]) == 0, name


def test_oracle_is_deterministic(engines):
    """Two oracle runs of the same query return identical rows."""
    sql = SSB_QUERIES["Q3.1"]
    first = engines["ssb"]["reference"].execute(sql)
    second = engines["ssb"]["reference"].execute(sql)
    assert_results_match(first, second, rel=0.0, context="oracle determinism")

"""Shard-equivalence suite for the distributed engine.

The load-bearing test is the differential fuzz sweep: the seeded SSB
query generator (shared with ``test_fuzz_queries``) emits 50+ queries
and every one must produce the same row multiset on the distributed
engine (2 and 4 shards, both partition policies), the single-node TCUDB
engine and the Reference oracle.  Unit classes pin the individual
contracts: partitioning (cover/disjoint, balance, determinism),
dimension broadcast (zero-copy Table sharing), merge determinism
(ascending-shard fold, bit-identical repeats), empty-shard identity
partials, single-node routing, the allreduce ledger term, and program
cache namespacing across coordinator/shard/single-node engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from differential_utils import assert_results_match
from test_fuzz_queries import FUZZ_SEED, QueryGenerator
from repro.common.errors import ConfigError, SchemaError
from repro.common.rng import make_rng
from repro.datasets.ssb import ssb_catalog
from repro.engine import create_engine
from repro.engine.base import ExecutionMode
from repro.engine.cache import ProgramCache
from repro.engine.reference import ReferenceEngine
from repro.engine.tcudb import (
    STAGE_SHARD_MERGE,
    DistributedEngine,
    TCUDBEngine,
    TCUDBOptions,
)
from repro.storage.catalog import Catalog
from repro.storage.shard import MAX_SHARDS, ShardedCatalog, shards_policy
from repro.storage.table import Table

TCU_REL = 2e-3
N_FUZZ_QUERIES = 50

FACT_KW = {"fact": "lineorder", "partition_key": "lo_orderkey"}


@pytest.fixture(scope="module")
def catalog():
    return ssb_catalog(scale_factor=1, rows_per_sf=2000, seed=13)


@pytest.fixture(scope="module")
def oracle(catalog):
    return ReferenceEngine(catalog)


@pytest.fixture(scope="module")
def single_node(catalog):
    return TCUDBEngine(catalog, mode=ExecutionMode.REAL)


def dist_engine(catalog, shards, policy="hash", **kwargs):
    return DistributedEngine(
        catalog, shards=shards, partition_policy=policy,
        mode=ExecutionMode.REAL, **FACT_KW, **kwargs,
    )


# --------------------------------------------------------------------- #
# Partitioning units
# --------------------------------------------------------------------- #

class TestPartitioning:
    @pytest.mark.parametrize("policy", ["hash", "round_robin"])
    def test_shards_cover_fact_exactly_once(self, catalog, policy):
        sharded = ShardedCatalog.partition(
            catalog, shards=4, fact="lineorder", policy=policy,
            key="lo_orderkey" if policy == "hash" else None,
        )
        base = catalog.get("lineorder")
        assert sum(sharded.shard_rows()) == base.num_rows
        # Every base row appears on exactly the shard the assignment
        # names, with base-relative order preserved inside the shard.
        for s in range(4):
            indices = np.flatnonzero(sharded.assignment == s)
            shard_keys = sharded.shard(s).get("lineorder")
            got = shard_keys.column("lo_orderkey").data
            expected = base.column("lo_orderkey").data[indices]
            assert np.array_equal(got, expected)

    def test_round_robin_is_balanced(self, catalog):
        sharded = ShardedCatalog.partition(
            catalog, shards=4, fact="lineorder", policy="round_robin",
        )
        rows = sharded.shard_rows()
        assert max(rows) - min(rows) <= 1

    def test_hash_is_deterministic_and_key_colocated(self, catalog):
        first = ShardedCatalog.partition(
            catalog, shards=4, fact="lineorder", policy="hash",
            key="lo_custkey",
        )
        second = ShardedCatalog.partition(
            catalog, shards=4, fact="lineorder", policy="hash",
            key="lo_custkey",
        )
        assert np.array_equal(first.assignment, second.assignment)
        # Equal keys land on equal shards (co-location contract).
        keys = catalog.get("lineorder").column("lo_custkey").data
        for value in np.unique(keys)[:20]:
            shards = np.unique(first.assignment[keys == value])
            assert shards.size == 1

    def test_policy_and_key_validation(self, catalog):
        with pytest.raises(ConfigError):
            ShardedCatalog.partition(catalog, shards=2, policy="range")
        with pytest.raises(SchemaError):
            ShardedCatalog.partition(
                catalog, shards=2, fact="lineorder", key="no_such_column",
            )
        with pytest.raises(ConfigError):
            shards_policy(0)

    def test_shards_policy_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert shards_policy(None) == 1
        assert shards_policy(3) == 3
        monkeypatch.setenv("REPRO_SHARDS", "2")
        assert shards_policy(None) == 2
        assert shards_policy(5) == 5  # explicit override wins
        assert shards_policy(10_000) == MAX_SHARDS
        monkeypatch.setenv("REPRO_SHARDS", "zebra")
        with pytest.raises(ConfigError):
            shards_policy(None)


class TestDimensionBroadcast:
    def test_dimensions_are_shared_objects(self, catalog):
        sharded = ShardedCatalog.partition(
            catalog, shards=3, fact="lineorder",
        )
        for dim in ("customer", "supplier", "part", "ddate"):
            base = catalog.get(dim)
            for s in range(3):
                # Zero-copy broadcast: the same Table object, hence the
                # same string dictionaries and physical codes.
                assert sharded.shard(s).get(dim) is base

    def test_fact_partition_shares_dictionaries(self, catalog):
        sharded = ShardedCatalog.partition(
            catalog, shards=2, fact="customer",
        )
        base = catalog.get("customer")
        for s in range(2):
            part = sharded.shard(s).get("customer")
            assert part is not base
            for name in part.column_names:
                dictionary = part.column(name).dictionary
                if dictionary is not None:
                    # take() must keep the dictionary object, so shard
                    # result codes concatenate without re-encoding.
                    assert dictionary is base.column(name).dictionary


# --------------------------------------------------------------------- #
# Merge semantics units
# --------------------------------------------------------------------- #

GRID_SQL = """
    SELECT d_year, SUM(lo_revenue) AS rev, COUNT(*) AS n
    FROM lineorder, ddate WHERE lo_orderdate = d_datekey
    GROUP BY d_year ORDER BY d_year;"""
MINMAX_SQL = """
    SELECT d_year, MIN(lo_revenue) AS lo, MAX(lo_revenue) AS hi,
           AVG(lo_quantity) AS qty
    FROM lineorder, ddate WHERE lo_orderdate = d_datekey
    GROUP BY d_year ORDER BY d_year;"""


class TestMergeDeterminism:
    @pytest.mark.parametrize("sql", [GRID_SQL, MINMAX_SQL],
                             ids=["grid", "partials"])
    @pytest.mark.parametrize("policy", ["hash", "round_robin"])
    def test_repeat_runs_bit_identical(self, catalog, sql, policy):
        engine = dist_engine(catalog, shards=3, policy=policy)
        first = engine.execute(sql).require_table()
        second = engine.execute(sql).require_table()
        assert first.column_names == second.column_names
        for name in first.column_names:
            assert np.array_equal(first.column(name).data,
                                  second.column(name).data)

    def test_matches_oracle_and_single_node(self, catalog, oracle,
                                            single_node):
        expected = oracle.execute(GRID_SQL)
        unsharded = single_node.execute(GRID_SQL)
        for shards in (2, 4):
            got = dist_engine(catalog, shards=shards).execute(GRID_SQL)
            assert_results_match(got, expected, rel=TCU_REL,
                                 context=f"dist({shards}) vs oracle")
            assert_results_match(got, unsharded, rel=TCU_REL,
                                 context=f"dist({shards}) vs single-node")

    def test_allreduce_cost_in_ledger_and_listing(self, catalog):
        result = dist_engine(catalog, shards=2).execute(GRID_SQL)
        assert result.extra["distributed"]["route"] == "grid-allreduce"
        assert STAGE_SHARD_MERGE in result.breakdown.stages
        ops = result.extra["operator_costs"]
        assert any(op.op_id == "allreduce" for op in ops)
        assert "allreduce merge" in result.extra["program_listing"]

    def test_single_node_routes(self, catalog):
        engine = dist_engine(catalog, shards=2)
        # Dimension-only query: replicated tables, fan-out would
        # multiply rows.
        dims = engine.execute(
            "SELECT COUNT(*) AS n FROM ddate;"
        ).extra["distributed"]
        assert dims["route"] == "single-node"
        assert "does not read the partitioned fact" in dims["reason"]
        # Non-aggregate LIMIT: tie-truncation depends on physical row
        # order, which sharding permutes.
        limited = engine.execute(
            "SELECT lo_orderkey FROM lineorder "
            "ORDER BY lo_orderkey LIMIT 5;"
        ).extra["distributed"]
        assert limited["route"] == "single-node"

    def test_concat_route_matches_oracle(self, catalog, oracle):
        sql = ("SELECT lo_orderkey, lo_revenue FROM lineorder "
               "WHERE lo_discount > 7 "
               "ORDER BY lo_revenue DESC, lo_orderkey;")
        got = dist_engine(catalog, shards=4).execute(sql)
        assert got.extra["distributed"]["route"] == "concat"
        assert_results_match(got, oracle.execute(sql), rel=TCU_REL,
                             context="concat route")


class TestEmptyShards:
    @pytest.fixture()
    def tiny(self):
        cat = Catalog()
        cat.register(Table.from_dict("facts", {
            "k": [1, 2, 3],
            "v": [10.0, 20.0, 30.0],
            "neg": [-5.0, -7.0, -9.0],
        }))
        cat.register(Table.from_dict("dim", {
            "k": [1, 2, 3, 4],
            "label": ["a", "b", "a", "b"],
        }))
        return cat

    @pytest.mark.parametrize("policy", ["hash", "round_robin"])
    def test_zero_row_shards_contribute_identity(self, tiny, policy):
        # 8 shards over a 3-row fact: most shards hold zero rows.  They
        # must contribute identity partials — no fabricated groups, no
        # zero corrupting a MIN over negative values.
        sql = ("SELECT label, SUM(v) AS s, MIN(neg) AS m, COUNT(*) AS n "
               "FROM facts, dim WHERE facts.k = dim.k "
               "GROUP BY label ORDER BY label;")
        expected = ReferenceEngine(tiny).execute(sql)
        engine = DistributedEngine(
            tiny, shards=8, fact="facts", partition_policy=policy,
            partition_key="k" if policy == "hash" else None,
            mode=ExecutionMode.REAL,
        )
        assert min(engine.sharded.shard_rows()) == 0
        assert_results_match(engine.execute(sql), expected, rel=TCU_REL,
                             context=f"empty shards ({policy})")

    def test_all_shards_empty_after_filter(self, tiny):
        sql = ("SELECT label, SUM(v) AS s FROM facts, dim "
               "WHERE facts.k = dim.k AND v > 1000 "
               "GROUP BY label;")
        engine = DistributedEngine(
            tiny, shards=4, fact="facts", partition_key="k",
            mode=ExecutionMode.REAL,
        )
        expected = ReferenceEngine(tiny).execute(sql)
        got = engine.execute(sql)
        assert got.require_table().num_rows == 0
        assert_results_match(got, expected, rel=TCU_REL,
                             context="globally empty aggregate")

    def test_global_aggregate_over_empty_selection(self, tiny):
        # Ungrouped COUNT over an empty selection must still produce
        # its single identity row, like the single-node engine does.
        sql = "SELECT COUNT(*) AS n FROM facts WHERE v > 1000;"
        engine = DistributedEngine(
            tiny, shards=4, fact="facts", partition_key="k",
            mode=ExecutionMode.REAL,
        )
        assert_results_match(
            engine.execute(sql), ReferenceEngine(tiny).execute(sql),
            rel=TCU_REL, context="empty ungrouped count",
        )


class TestCacheNamespacing:
    def test_shard_and_node_entries_coexist(self, catalog):
        # One server-wide cache shared by a single-node engine and a
        # distributed engine on the SAME SQL: the per-shard fingerprint
        # namespaces must keep entries from evicting each other, and
        # both engines must stay correct.
        cache = ProgramCache()
        node = TCUDBEngine(catalog, mode=ExecutionMode.REAL,
                           options=TCUDBOptions(), program_cache=cache)
        dist = dist_engine(catalog, shards=2, program_cache=cache)
        expected = ReferenceEngine(catalog).execute(GRID_SQL)
        for _ in range(2):
            assert_results_match(node.execute(GRID_SQL), expected,
                                 rel=TCU_REL, context="cached node")
            assert_results_match(dist.execute(GRID_SQL), expected,
                                 rel=TCU_REL, context="cached dist")
        stats = cache.stats()
        # Second round hits for every engine — nothing was evicted or
        # invalidated by a namespace collision.
        assert stats["evictions"] == 0
        assert stats["invalidations"] == 0
        assert stats["hits"] >= 2

    def test_distinct_parameter_bindings_do_not_collide(self, catalog,
                                                        oracle):
        # The distributed program cache keys on the substituted literals,
        # so two bindings of one prepared template must not reuse each
        # other's shard plans.
        cache = ProgramCache()
        dist = dist_engine(catalog, shards=2, program_cache=cache)
        template = ("SELECT d_year, SUM(lo_revenue) AS rev "
                    "FROM lineorder, ddate "
                    "WHERE lo_orderdate = d_datekey AND lo_discount >= ? "
                    "GROUP BY d_year;")
        prepared = dist.prepare(template)
        for value in (2, 8, 2):
            got = dist.execute_prepared(prepared, [value])
            expected = oracle.execute(template.replace("?", str(value)))
            assert_results_match(got, expected, rel=TCU_REL,
                                 context=f"dist prepared ?={value}")


# --------------------------------------------------------------------- #
# Differential fuzz: sharded == unsharded == oracle
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def fuzz_queries():
    generator = QueryGenerator(make_rng(FUZZ_SEED))
    return [generator.generate() for _ in range(N_FUZZ_QUERIES)]


@pytest.fixture(scope="module")
def oracle_rows(catalog, fuzz_queries):
    reference = create_engine("reference", catalog)
    return [reference.execute(sql) for sql in fuzz_queries]


@pytest.mark.parametrize("policy", ["hash", "round_robin"])
@pytest.mark.parametrize("shards", [2, 4])
def test_fuzz_sharded_equals_unsharded_equals_oracle(
    catalog, single_node, fuzz_queries, oracle_rows, shards, policy,
):
    engine = dist_engine(catalog, shards=shards, policy=policy)
    failures: list[str] = []
    routes: dict[str, int] = {}
    for index, (sql, expected) in enumerate(zip(fuzz_queries, oracle_rows)):
        try:
            got = engine.execute(sql)
            info = got.extra.get("distributed")
            route = info["route"] if info else "single-node"
            routes[route] = routes.get(route, 0) + 1
            assert_results_match(
                got, expected, rel=TCU_REL,
                context=f"fuzz #{index} dist({shards},{policy}): {sql}",
            )
            assert_results_match(
                got, single_node.execute(sql), rel=TCU_REL,
                context=f"fuzz #{index} vs unsharded: {sql}",
            )
        except AssertionError as error:
            failures.append(f"-- fuzz #{index}\n{sql}\n   {error}")
        except Exception as error:  # engine crash: also a divergence
            failures.append(
                f"-- fuzz #{index} raised {type(error).__name__}: "
                f"{error}\n{sql}"
            )
    assert not failures, (
        f"{len(failures)}/{len(fuzz_queries)} fuzzed queries diverged at "
        f"shards={shards} policy={policy}; reproducing SQL below\n"
        + "\n".join(failures[:10])
    )
    # The sweep must exercise the distributed merge, not just the
    # single-node escape hatch.
    distributed_runs = sum(count for route, count in routes.items()
                           if route != "single-node")
    assert distributed_runs >= 10, routes

"""Driver internals (composite keys, GEMM paths) and the MAGiQ engine."""

import numpy as np
import pytest

from repro.engine.base import ExecutionMode
from repro.engine.magiq import GraphBLAS, MAGiQEngine
from repro.engine.tcudb.cost import estimate_dense
from repro.engine.tcudb.driver import (
    NUMERIC_CELL_LIMIT,
    CompositeKey,
    PreparedJoin,
    TCUDriver,
)
from repro.engine.tcudb.transform import union_key_domain
from repro.hardware.profiles import I7_7700K
from repro.tensor.csr import CSRMatrix
from repro.tensor.coo import COOMatrix
from repro.tensor.precision import Precision


class TestCompositeKey:
    def test_roundtrip_two_columns(self, rng):
        a = rng.integers(10, 20, 50)
        b = rng.integers(0, 5, 50)
        key = CompositeKey.build([a, b])
        decoded = key.decode(key.codes)
        assert np.array_equal(decoded[0], a)
        assert np.array_equal(decoded[1], b)

    def test_cardinality(self):
        key = CompositeKey.build([np.array([1, 1, 2]), np.array([7, 8, 7])])
        assert key.cardinality == 4  # 2 values x 2 values

    def test_three_columns(self, rng):
        arrays = [rng.integers(0, 4, 30) for _ in range(3)]
        key = CompositeKey.build(arrays)
        decoded = key.decode(key.codes)
        for original, back in zip(arrays, decoded):
            assert np.array_equal(original, back)

    def test_empty_rejected(self):
        from repro.common.errors import ExecutionError

        with pytest.raises(ExecutionError):
            CompositeKey.build([])


class TestDriverJoinPaths:
    def _prepared(self, rng, n, m, k):
        left = rng.integers(0, k, n)
        right = rng.integers(0, k, m)
        domain = union_key_domain(left, right)
        return PreparedJoin(
            op="=", left_keys_mapped=domain.left,
            right_keys_mapped=domain.right,
            domain_values=domain.values, k=domain.k,
        )

    def _plan(self, device, n, m, k):
        from repro.engine.tcudb.cost import OperatorGeometry

        geometry = OperatorGeometry(
            g1=n, g2=m, k=k, nnz_left=n, nnz_right=m, n_tuples=n + m,
            raw_bytes=8.0 * (n + m), result_rows=n,
        )
        return estimate_dense(device, I7_7700K, geometry, Precision.INT4)

    def test_matmul_and_semantic_paths_agree(self, device, rng):
        """The indicator-GEMM join and the key-based join produce the
        same pair set — the central driver invariant."""
        n, m, k = 60, 45, 9
        prepared = self._prepared(rng, n, m, k)
        plan = self._plan(device, n, m, k)
        driver = TCUDriver(device, ExecutionMode.REAL)
        assert n * m <= NUMERIC_CELL_LIMIT
        via_matmul = driver.join_2way(prepared, plan)
        li, ri = driver._join_pairs_semantic(prepared)
        matmul_pairs = sorted(zip(via_matmul.arrays[0].tolist(),
                                  via_matmul.arrays[1].tolist()))
        semantic_pairs = sorted(zip(li.tolist(), ri.tolist()))
        assert matmul_pairs == semantic_pairs

    def test_analytic_mode_counts_only(self, device, rng):
        prepared = self._prepared(rng, 40, 40, 5)
        plan = self._plan(device, 40, 40, 5)
        driver = TCUDriver(device, ExecutionMode.ANALYTIC)
        run = driver.join_2way(prepared, plan)
        assert run.arrays is None
        real = TCUDriver(device, ExecutionMode.REAL).join_2way(prepared, plan)
        assert run.n_rows == real.n_rows

    def test_breakdown_charges_plan_components(self, device, rng):
        prepared = self._prepared(rng, 40, 40, 5)
        plan = self._plan(device, 40, 40, 5)
        driver = TCUDriver(device, ExecutionMode.REAL)
        run = driver.join_2way(prepared, plan)
        stages = run.breakdown.stages
        assert stages["fill_matrices"] == pytest.approx(
            plan.transform.fill_seconds
        )
        assert stages["tcu_join"] == pytest.approx(plan.compute_seconds)


class TestGraphBLAS:
    @pytest.fixture
    def grb(self, device):
        return GraphBLAS(device)

    @pytest.fixture
    def matrix(self, rng):
        dense = np.where(rng.random((12, 12)) < 0.3,
                         rng.integers(1, 5, (12, 12)).astype(float), 0.0)
        return CSRMatrix.from_dense(dense)

    def test_mxv(self, grb, matrix, rng):
        x = rng.normal(size=12)
        result = grb.mxv(matrix, x)
        assert np.allclose(result.value, matrix.to_dense() @ x)
        assert result.seconds > 0

    def test_vxm_is_transpose_product(self, grb, matrix, rng):
        x = rng.normal(size=12)
        result = grb.vxm(x, matrix)
        assert np.allclose(result.value, matrix.to_dense().T @ x)

    def test_mxm_matches_dense(self, grb, matrix):
        result = grb.mxm(matrix, matrix)
        assert np.allclose(result.value.to_dense(),
                           matrix.to_dense() @ matrix.to_dense())

    def test_reduce_rows_is_row_sum(self, grb, matrix):
        result = grb.reduce_rows(matrix)
        assert np.allclose(result.value, matrix.to_dense().sum(axis=1))

    def test_ewise_div_guards_zero(self, grb):
        result = grb.ewise_div(np.array([1.0, 2.0]), np.array([2.0, 0.0]))
        assert np.allclose(result.value, [0.5, 0.0])

    def test_costs_scale_with_nnz(self, grb, rng):
        small = CSRMatrix.from_coo(COOMatrix(
            np.array([0]), np.array([0]), np.array([1.0]), (100, 100)))
        rows = rng.integers(0, 100, 5000)
        cols = rng.integers(0, 100, 5000)
        big = CSRMatrix.from_coo(
            COOMatrix(rows, cols, np.ones(5000), (100, 100))
        )
        x = np.ones(100)
        assert grb.mxv(big, x).seconds > grb.mxv(small, x).seconds


class TestMAGiQEngine:
    def test_requires_loaded_graph(self):
        from repro.common.errors import ExecutionError

        engine = MAGiQEngine()
        with pytest.raises(ExecutionError):
            _ = engine.adjacency

    def test_out_degrees(self):
        engine = MAGiQEngine()
        engine.load_graph(np.array([0, 0, 1]), np.array([1, 2, 2]), 3)
        degrees, seconds = engine.out_degrees()
        assert list(degrees) == [2, 1, 0]
        assert seconds > 0

    def test_pagerank_scores_sum_bounded(self):
        engine = MAGiQEngine()
        rng = np.random.default_rng(0)
        src = rng.integers(0, 50, 150)
        dst = rng.integers(0, 50, 150)
        engine.load_graph(src, dst, 50)
        output = engine.pagerank(max_iterations=40)
        assert output.scores.min() > 0
        # The paper's formulation leaks dangling mass, so the total is
        # at most 1 but at least the teleport mass.
        assert 0.15 <= output.scores.sum() <= 1.0 + 1e-9

    def test_convergence_stops_early(self):
        engine = MAGiQEngine()
        engine.load_graph(np.array([0, 1]), np.array([1, 0]), 2)
        output = engine.pagerank(max_iterations=500, tolerance=1e-12)
        assert output.iterations < 500

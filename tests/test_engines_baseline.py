"""Baseline engines (YDB / MonetDB): correctness and analytic fidelity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.microbench import microbench_catalog
from repro.engine.base import ExecutionMode
from repro.engine.monetdb import MonetDBEngine
from repro.engine.relational import (
    combine_group_codes,
    equi_join_count,
    equi_join_indices,
    nonequi_join_count,
    nonequi_join_indices,
)
from repro.engine.ydb import YDBEngine
from repro.storage import Catalog, Table


class TestJoinKernels:
    def test_equi_join_indices_match_brute_force(self, rng):
        left = rng.integers(0, 10, 50)
        right = rng.integers(0, 10, 60)
        li, ri = equi_join_indices(left, right)
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j) for i in range(50) for j in range(60)
            if left[i] == right[j]
        )
        assert got == expected

    def test_equi_join_count_matches_indices(self, rng):
        left = rng.integers(0, 5, 40)
        right = rng.integers(0, 5, 40)
        li, _ = equi_join_indices(left, right)
        assert equi_join_count(left, right) == li.size

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "!="])
    def test_nonequi_counts_and_indices(self, rng, op):
        import operator

        ops = {"<": operator.lt, "<=": operator.le, ">": operator.gt,
               ">=": operator.ge, "!=": operator.ne}
        left = rng.integers(0, 8, 30)
        right = rng.integers(0, 8, 25)
        expected = sorted(
            (i, j) for i in range(30) for j in range(25)
            if ops[op](left[i], right[j])
        )
        assert nonequi_join_count(left, right, op) == len(expected)
        li, ri = nonequi_join_indices(left, right, op)
        assert sorted(zip(li.tolist(), ri.tolist())) == expected

    def test_combine_group_codes_distinguishes_tuples(self, rng):
        a = rng.integers(0, 4, 100)
        b = rng.integers(0, 3, 100)
        combined = combine_group_codes([a, b])
        seen = {}
        for i in range(100):
            key = (a[i], b[i])
            if key in seen:
                assert combined[i] == seen[key]
            else:
                for other, code in seen.items():
                    assert combined[i] != code or other == key
                seen[key] = combined[i]


class TestYDBQueries:
    def test_join_results(self, small_catalog):
        engine = YDBEngine(small_catalog)
        result = engine.execute(
            "SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID"
        )
        rows = sorted(result.require_table().rows())
        assert rows == sorted([
            (10.0, "x"), (10.0, "y"), (20.0, "z"), (5.0, "z"),
        ])

    def test_group_by_aggregates(self, small_catalog):
        engine = YDBEngine(small_catalog)
        result = engine.execute(
            "SELECT SUM(a.val) s, COUNT(*) c, AVG(a.val) m, b.val "
            "FROM a, b WHERE a.id = b.id GROUP BY b.val"
        )
        data = {r[3]: r[:3] for r in result.require_table().rows()}
        assert data["x"] == (10.0, 1.0, 10.0)
        assert data["y"] == (10.0, 1.0, 10.0)
        assert data["z"] == (25.0, 2.0, 12.5)

    def test_min_max_supported(self, small_catalog):
        engine = YDBEngine(small_catalog)
        result = engine.execute(
            "SELECT MIN(a.val), MAX(a.val) FROM a, b WHERE a.id = b.id"
        )
        assert result.require_table().rows() == [(5.0, 20.0)]

    def test_order_by_desc_and_limit(self, small_catalog):
        engine = YDBEngine(small_catalog)
        result = engine.execute(
            "SELECT SUM(a.val) s, b.val FROM a, b WHERE a.id = b.id "
            "GROUP BY b.val ORDER BY s DESC LIMIT 1"
        )
        assert result.require_table().rows() == [(25.0, "z")]

    def test_filters_pushed_down(self, small_catalog):
        engine = YDBEngine(small_catalog)
        result = engine.execute(
            "SELECT a.val, b.val FROM a, b WHERE a.id = b.id AND a.val > 9 "
            "AND b.val = 'z'"
        )
        assert result.require_table().rows() == [(20.0, "z")]

    def test_nonequi_join(self, small_catalog):
        engine = YDBEngine(small_catalog)
        result = engine.execute(
            "SELECT a.id, b.id FROM a, b WHERE a.id < b.id"
        )
        expected = sorted(
            (x, y) for x in [1, 2, 3, 2, 5] for y in [1, 1, 2, 4] if x < y
        )
        assert sorted(result.require_table().rows()) == expected

    def test_empty_result(self, small_catalog):
        engine = YDBEngine(small_catalog)
        result = engine.execute(
            "SELECT a.val, b.val FROM a, b WHERE a.id = b.id AND a.val > 999"
        )
        assert result.n_rows == 0

    def test_breakdown_has_join_stage(self, small_catalog):
        engine = YDBEngine(small_catalog)
        result = engine.execute(
            "SELECT a.val, b.val FROM a, b WHERE a.id = b.id"
        )
        assert result.breakdown.get("join") > 0
        assert result.breakdown.get("gpu_memcpy") > 0


class TestMonetDBAgainstYDB:
    def test_same_results_different_costs(self, micro_catalog):
        ydb = YDBEngine(micro_catalog)
        monet = MonetDBEngine(micro_catalog)
        sql = ("SELECT SUM(a.val) s, b.val FROM a, b WHERE a.id = b.id "
               "GROUP BY b.val ORDER BY b.val")
        ydb_rows = ydb.execute(sql).require_table().rows()
        monet_rows = monet.execute(sql).require_table().rows()
        assert ydb_rows == monet_rows

    def test_monetdb_slower_on_join_heavy(self, micro_catalog):
        sql = "SELECT a.val, b.val FROM a, b WHERE a.id = b.id"
        ydb = YDBEngine(micro_catalog).execute(sql)
        monet = MonetDBEngine(micro_catalog).execute(sql)
        assert monet.seconds > ydb.seconds


class TestAnalyticMode:
    def test_counts_match_real_mode(self):
        catalog = microbench_catalog(2048, 16, seed=5)
        sql = "SELECT a.val, b.val FROM a, b WHERE a.id = b.id"
        real = YDBEngine(catalog, mode=ExecutionMode.REAL).execute(sql)
        analytic = YDBEngine(
            catalog, mode=ExecutionMode.ANALYTIC, materialize_limit=10
        ).execute(sql)
        assert analytic.n_rows == real.n_rows
        assert analytic.table is None

    def test_charged_time_identical_across_modes(self):
        catalog = microbench_catalog(1024, 8, seed=6)
        sql = "SELECT a.val, b.val FROM a, b WHERE a.id = b.id"
        real = YDBEngine(catalog, mode=ExecutionMode.REAL).execute(sql)
        analytic = YDBEngine(
            catalog, mode=ExecutionMode.ANALYTIC, materialize_limit=10
        ).execute(sql)
        assert analytic.seconds == pytest.approx(real.seconds, rel=1e-9)

    def test_require_table_raises_when_skipped(self):
        catalog = microbench_catalog(1024, 8, seed=6)
        run = YDBEngine(
            catalog, mode=ExecutionMode.ANALYTIC, materialize_limit=10
        ).execute("SELECT a.val, b.val FROM a, b WHERE a.id = b.id")
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            run.require_table()


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 80),
    k=st.integers(1, 12),
    seed=st.integers(0, 99999),
)
def test_property_groupby_sums_match_numpy(n, k, seed):
    """YDB's grouped SUM over a join equals a brute-force computation."""
    rng = np.random.default_rng(seed)
    a_id = rng.integers(0, k, n)
    a_val = rng.integers(0, 50, n).astype(float)
    b_id = rng.integers(0, k, n)
    b_val = rng.integers(0, 5, n)
    catalog = Catalog()
    catalog.register(Table.from_dict("a", {"id": a_id, "val": a_val}))
    catalog.register(Table.from_dict("b", {"id": b_id, "val": b_val}))
    result = YDBEngine(catalog).execute(
        "SELECT SUM(a.val) s, b.val FROM a, b WHERE a.id = b.id "
        "GROUP BY b.val"
    )
    got = {int(r[1]): r[0] for r in result.require_table().rows()}
    expected: dict[int, float] = {}
    for j in range(n):
        matched = a_val[a_id == b_id[j]].sum()
        if (a_id == b_id[j]).any():
            expected[int(b_val[j])] = expected.get(int(b_val[j]), 0.0) + matched
    assert got.keys() == expected.keys()
    for group, total in expected.items():
        assert got[group] == pytest.approx(total)

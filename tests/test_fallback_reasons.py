"""Fallback and native-coverage contracts of the TensorProgram pipeline.

Constructs truly beyond matmul expressiveness (MIN/MAX, single-table
projections) must (a) populate ``result.extra["fallback_reason"]`` with
``fallback_kind == "pattern"`` and (b) still return the oracle's answer
through the YDB fallback path.  Constructs the operator pipeline now
covers natively — HAVING masks, cross-table residual ORs, non-star join
graphs and duplicate-key dimensions via hybrid execution — must *not*
report a pattern rejection; on tiny catalogs the optimizer may still
decline by cost (``fallback_kind == "cost"``), which is a pricing
decision, not an expressiveness gap.  Also holds the regression test
for the `_order_index` bug: ORDER BY keys that name an aliased
aggregate output by expression used to be silently skipped, reordering
LIMIT results.
"""

from __future__ import annotations

import numpy as np
import pytest

from differential_utils import assert_results_match, result_rows
from repro.common.errors import ExecutionError, UnsupportedQueryError
from repro.datasets.microbench import microbench_catalog
from repro.engine.reference import ReferenceEngine
from repro.engine.tcudb.engine import TCUDBEngine
from repro.storage import Catalog, Table


def run_both(catalog, sql):
    tcu = TCUDBEngine(catalog).execute(sql)
    oracle = ReferenceEngine(catalog).execute(sql)
    return tcu, oracle


@pytest.fixture
def chain4_catalog(rng):
    """Four tables joined in a chain — no star center exists."""
    catalog = Catalog()
    catalog.register(Table.from_dict("t1", {
        "k1": rng.integers(0, 6, 40),
        "v": rng.integers(0, 20, 40).astype(float),
    }))
    catalog.register(Table.from_dict("t2", {
        "k1": rng.integers(0, 6, 30),
        "k2": rng.integers(0, 5, 30),
    }))
    catalog.register(Table.from_dict("t3", {
        "k2": rng.integers(0, 5, 25),
        "k3": rng.integers(0, 4, 25),
    }))
    catalog.register(Table.from_dict("t4", {
        "k3": rng.integers(0, 4, 20),
        "g": rng.integers(0, 3, 20),
    }))
    return catalog


@pytest.fixture
def dup_dim_catalog(rng):
    """A star whose second dimension has duplicate join keys *and*
    contributes a group column."""
    catalog = Catalog()
    catalog.register(Table.from_dict("f", {
        "kb": rng.integers(0, 8, 60),
        "kd": rng.integers(0, 5, 60),
        "v": rng.integers(0, 30, 60).astype(float),
    }))
    catalog.register(Table.from_dict("b", {
        "kb": np.arange(8),
        "gb": rng.integers(0, 3, 8),
    }))
    catalog.register(Table.from_dict("d", {
        "kd": rng.integers(0, 5, 12),  # duplicates
        "gd": rng.integers(0, 2, 12),
    }))
    return catalog


class TestFallbackReasons:
    def test_min_max(self, small_catalog):
        tcu, oracle = run_both(
            small_catalog,
            "SELECT MIN(a.val) AS m, MAX(a.val) AS x "
            "FROM a, b WHERE a.id = b.id",
        )
        assert "beyond TCU expressiveness" in tcu.extra["fallback_reason"]
        assert tcu.extra["executed_by"] == "YDB-fallback"
        assert tcu.extra["fallback_kind"] == "pattern"
        assert_results_match(tcu, oracle)

    def test_cross_table_or_runs_natively(self):
        """Residual ORs lower to MaskApply over the extracted pairs —
        native TCU execution, not a whole-query fallback."""
        catalog = microbench_catalog(700, 24, seed=3)
        tcu, oracle = run_both(
            catalog,
            "SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID "
            "AND (A.Val > 15 OR B.Val < 5)",
        )
        assert not tcu.extra.get("fallback_reason")
        assert tcu.extra["executed_by"] == "TCU"
        assert_results_match(tcu, oracle, rel=1e-3)

    def test_cross_table_or_tiny_catalog_is_cost_not_pattern(
        self, small_catalog
    ):
        """On a 5-row catalog the optimizer may decline by cost — but the
        rejection must be priced, never a pattern gap."""
        tcu, oracle = run_both(
            small_catalog,
            "SELECT a.val, b.val FROM a, b WHERE a.id = b.id "
            "AND (a.val > 15 OR b.val = 'x')",
        )
        if tcu.extra.get("fallback_reason"):
            assert tcu.extra["fallback_kind"] == "cost"
        assert_results_match(tcu, oracle)

    def test_single_table_or_still_matches(self, small_catalog):
        """Same-table ORs are plain filter masks — no fallback required,
        but the answer must match either way."""
        tcu, oracle = run_both(
            small_catalog,
            "SELECT a.val, b.val FROM a, b WHERE a.id = b.id "
            "AND (a.val < 8 OR a.val > 25)",
        )
        assert_results_match(tcu, oracle)

    def test_non_star_join_graph_runs_hybrid(self, chain4_catalog):
        """Chain joins feeding an aggregate are beyond the star pattern
        but run hybrid: PhysicalExecutor pre-stage + TCU grouped reduce."""
        tcu, oracle = run_both(
            chain4_catalog,
            "SELECT SUM(t1.v) AS s, t4.g FROM t1, t2, t3, t4 "
            "WHERE t1.k1 = t2.k1 AND t2.k2 = t3.k2 AND t3.k3 = t4.k3 "
            "GROUP BY t4.g ORDER BY t4.g",
        )
        assert not tcu.extra.get("fallback_reason")
        assert tcu.extra["executed_by"] == "TCU-hybrid"
        assert_results_match(tcu, oracle, rel=1e-3)

    def test_duplicate_key_dim_with_group_column_runs_hybrid(
        self, dup_dim_catalog
    ):
        """The pattern program rejects duplicate-key dimensions at run
        time; the engine retries through the hybrid pipeline."""
        tcu, oracle = run_both(
            dup_dim_catalog,
            "SELECT SUM(f.v) AS s, b.gb, d.gd FROM f, b, d "
            "WHERE f.kb = b.kb AND f.kd = d.kd "
            "GROUP BY b.gb, d.gd ORDER BY b.gb, d.gd",
        )
        assert not tcu.extra.get("fallback_reason")
        assert tcu.extra["executed_by"] == "TCU-hybrid"
        assert_results_match(tcu, oracle, rel=1e-3)

    def test_having_runs_natively(self):
        """HAVING lowers to MaskApply over the aggregate output grid."""
        catalog = microbench_catalog(700, 24, seed=3)
        tcu, oracle = run_both(
            catalog,
            "SELECT SUM(A.Val) AS s, B.Val FROM A, B WHERE A.ID = B.ID "
            "GROUP BY B.Val HAVING SUM(A.Val) > 500",
        )
        assert not tcu.extra.get("fallback_reason")
        assert tcu.extra["executed_by"] == "TCU"
        assert_results_match(tcu, oracle, rel=1e-3)

    def test_having_aggregate_not_in_select(self):
        """HAVING over an aggregate absent from the select list appends
        an extra AggregateSpec (extra grid) instead of falling back."""
        catalog = microbench_catalog(700, 24, seed=3)
        tcu, oracle = run_both(
            catalog,
            "SELECT SUM(A.Val) AS s, B.Val FROM A, B WHERE A.ID = B.ID "
            "GROUP BY B.Val HAVING COUNT(*) > 25",
        )
        assert not tcu.extra.get("fallback_reason")
        assert_results_match(tcu, oracle, rel=1e-3)

    def test_single_table(self, small_catalog):
        tcu, oracle = run_both(
            small_catalog, "SELECT a.val FROM a WHERE a.val > 6"
        )
        assert "single-table" in tcu.extra["fallback_reason"]
        assert tcu.extra["fallback_kind"] == "pattern"
        assert_results_match(tcu, oracle)

    def test_group_by_without_aggregates_runs_hybrid(self):
        catalog = microbench_catalog(700, 24, seed=3)
        tcu, oracle = run_both(
            catalog,
            "SELECT B.Val FROM A, B WHERE A.ID = B.ID GROUP BY B.Val "
            "ORDER BY B.Val",
        )
        assert not tcu.extra.get("fallback_reason")
        assert tcu.extra["executed_by"] == "TCU-hybrid"
        assert_results_match(tcu, oracle)

    def test_disable_fallback_raises_for_every_reason(self, small_catalog):
        from repro.engine.tcudb import TCUDBOptions

        engine = TCUDBEngine(
            small_catalog, options=TCUDBOptions(disable_fallback=True)
        )
        for sql in (
            "SELECT MIN(a.val) AS m FROM a, b WHERE a.id = b.id",
            "SELECT a.val FROM a",
            "SELECT SUM(a.val) AS s, b.val FROM a, b WHERE a.id = b.id "
            "GROUP BY b.val HAVING COUNT(*) > 1",
        ):
            with pytest.raises(UnsupportedQueryError):
                engine.execute(sql)


class TestOrderByAliasedAggregate:
    """Regression for TCUDBEngine._order_index (silently skipped keys)."""

    @pytest.fixture
    def catalog(self):
        return microbench_catalog(700, 24, seed=3)

    def test_order_by_aggregate_expression_with_limit(self, catalog):
        # ORDER BY names the aggregate *expression* while the select list
        # aliases it: the old resolution returned None and silently kept
        # the unsorted group order, so LIMIT returned the wrong groups.
        sql = (
            "SELECT SUM(A.Val) AS s, B.Val AS g FROM A, B "
            "WHERE A.ID = B.ID GROUP BY B.Val "
            "ORDER BY SUM(A.Val) DESC LIMIT 2"
        )
        tcu = TCUDBEngine(catalog).execute(sql)
        oracle = ReferenceEngine(catalog).execute(sql)
        got = tcu.require_table().rows()
        expected = oracle.require_table().rows()
        assert len(got) == len(expected) == 2
        sums = [row[0] for row in got]
        assert sums == sorted(sums, reverse=True)
        for g_row, e_row in zip(got, expected):
            assert g_row[0] == pytest.approx(e_row[0], rel=1e-3)
            assert g_row[1] == e_row[1]

    def test_order_by_alias_on_tcu_path(self, catalog):
        sql = (
            "SELECT SUM(A.Val) AS s, B.Val AS g FROM A, B "
            "WHERE A.ID = B.ID GROUP BY B.Val ORDER BY s DESC LIMIT 3"
        )
        tcu = TCUDBEngine(catalog).execute(sql)
        oracle = ReferenceEngine(catalog).execute(sql)
        got = [row[1] for row in tcu.require_table().rows()]
        expected = [row[1] for row in oracle.require_table().rows()]
        assert got == expected

    def test_unresolvable_order_key_raises(self, catalog):
        # The old except-everything clause swallowed resolution failures
        # and silently skipped the key; it must now raise on every path.
        with pytest.raises(ExecutionError):
            TCUDBEngine(catalog).execute(
                "SELECT A.Val AS v FROM A, B WHERE A.ID = B.ID "
                "ORDER BY B.Val"
            )

    def test_oracle_rejects_unknown_order_key(self, catalog):
        with pytest.raises(ExecutionError):
            ReferenceEngine(catalog).execute(
                "SELECT A.Val AS v FROM A, B WHERE A.ID = B.ID "
                "ORDER BY B.Val"
            )


class TestFallbackCoverageMatrix:
    """One sweep asserting rejection kind + oracle match for the catalog
    of fallback classes the compiler can produce."""

    def test_pattern_rejections_name_the_construct(self, small_catalog):
        cases = {
            "SELECT a.val FROM a": "single-table",
            "SELECT MIN(a.val) AS m FROM a, b WHERE a.id = b.id":
                "beyond TCU expressiveness",
        }
        oracle_engine = ReferenceEngine(small_catalog)
        tcu_engine = TCUDBEngine(small_catalog)
        seen = set()
        for sql, fragment in cases.items():
            tcu = tcu_engine.execute(sql)
            reason = tcu.extra.get("fallback_reason", "")
            assert fragment in reason, (sql, reason)
            assert tcu.extra["fallback_kind"] == "pattern", (sql, reason)
            seen.add(reason)
            assert result_rows(tcu) == result_rows(oracle_engine.execute(sql))
        assert len(seen) == len(cases)

    def test_priced_rejections_are_cost_kind(self, small_catalog):
        """Shapes the pipeline expresses (HAVING masks, non-product
        arguments via hybrid) only fall back by pricing on this 5-row
        catalog — and still match the oracle."""
        cases = [
            "SELECT SUM(a.val % 3) AS s, b.val FROM a, b "
            "WHERE a.id = b.id GROUP BY b.val",
            "SELECT SUM(a.val) AS s, b.val FROM a, b WHERE a.id = b.id "
            "GROUP BY b.val HAVING COUNT(*) > 1",
        ]
        oracle_engine = ReferenceEngine(small_catalog)
        tcu_engine = TCUDBEngine(small_catalog)
        for sql in cases:
            tcu = tcu_engine.execute(sql)
            if tcu.extra.get("fallback_reason"):
                assert tcu.extra["fallback_kind"] == "cost", sql
            assert result_rows(tcu) == result_rows(oracle_engine.execute(sql))

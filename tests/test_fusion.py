"""The TensorProgram fusion pass: rewrite-rule applicability, fused vs
unfused equivalence over the fuzz corpus, and the statistics-derived
selectivity estimates that replaced the hard-coded 0.5 per conjunct.

The equivalence property is the load-bearing test: for every fuzzed
query, the fused program (BatchedGemm + masked epilogues + direct-COO
operands) must produce the same rows as the unfused per-aggregate DAG
and as the Reference oracle, never charge *more* simulated time, and
keep a consistent per-operator cost ledger.
"""

from __future__ import annotations

import numpy as np
import pytest

from differential_utils import assert_results_match
from repro.common.rng import make_rng
from repro.datasets.ssb import ssb_catalog
from repro.engine import create_engine
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import (
    BatchedGemm,
    Strategy,
    TCUDBEngine,
    TCUDBOptions,
    fuse_program,
    lower_query,
)
from repro.engine.tcudb import ops
from repro.sql.binder import bind
from repro.sql.parser import parse
from repro.storage import Catalog, Table
from repro.storage.statistics import (
    ColumnStats,
    conjunction_selectivity,
    predicate_selectivity,
)
from test_fuzz_queries import FUZZ_SEED, QueryGenerator

TCU_REL = 2e-3


def lowered_program(catalog, sql, fusion):
    bound = bind(parse(sql), catalog, None)
    lowered = lower_query(bound, ExecutionMode.REAL, fusion=fusion)
    assert not isinstance(lowered, type(None))
    return lowered.program


def op_kinds(program):
    return [op.kind for op in program.ops]


# --------------------------------------------------------------------- #
# Rewrite-rule applicability
# --------------------------------------------------------------------- #


class TestRewriteRules:
    @pytest.fixture
    def catalog(self, rng):
        catalog = Catalog()
        catalog.register(Table.from_dict("a", {
            "id": rng.integers(0, 8, 60),
            "val": rng.integers(0, 9, 60).astype(float),
            "w": rng.integers(1, 5, 60).astype(float),
        }))
        catalog.register(Table.from_dict("b", {
            "id": np.arange(8),
            "g": rng.integers(0, 3, 8),
            "val": rng.integers(0, 9, 8).astype(float),
        }))
        catalog.register(Table.from_dict("c", {
            "w": np.arange(6),
            "g": rng.integers(0, 3, 6),
            "val": rng.integers(0, 9, 6).astype(float),
        }))
        return catalog

    def test_multi_grid_agg_batches(self, catalog):
        sql = ("SELECT SUM(a.val), COUNT(*), AVG(a.w), b.g FROM a, b "
               "WHERE a.id = b.id GROUP BY b.g")
        program = lowered_program(catalog, sql, fusion=True)
        batched = [op for op in program.ops if isinstance(op, BatchedGemm)]
        assert len(batched) == 1
        assert batched[0].n_grids == 3  # count + sum + avg value grids
        assert batched[0].fused_from  # rewrite recorded in the listing
        assert "BatchedGemm" in program.describe()
        assert "fused_from" in program.describe()
        fill = next(op for op in program.ops
                    if isinstance(op, ops.ValueFill))
        assert fill.shared

    def test_count_only_agg_stays_plain_gemm(self, catalog):
        sql = ("SELECT COUNT(*), b.g FROM a, b WHERE a.id = b.id "
               "GROUP BY b.g")
        program = lowered_program(catalog, sql, fusion=True)
        # A single (count) grid has no fan-out to batch.
        assert not any(isinstance(op, BatchedGemm) for op in program.ops)
        assert any(type(op) is ops.Gemm for op in program.ops)

    def test_having_fuses_into_grid_aggregate(self, catalog):
        sql = ("SELECT SUM(a.val), b.g FROM a, b WHERE a.id = b.id "
               "GROUP BY b.g HAVING COUNT(*) > 2")
        program = lowered_program(catalog, sql, fusion=True)
        kinds = op_kinds(program)
        assert "mask_apply" not in kinds
        harvest = next(op for op in program.ops
                       if isinstance(op, ops.GridAggregate))
        assert harvest.epilogue_predicates
        assert "mask_having" in harvest.fused_from
        # The Decode consumer was rewired onto the host operator.
        decode = next(op for op in program.ops if op.kind == "decode")
        assert decode.input == harvest.id

    def test_residual_or_fuses_into_nonzero_extract(self, catalog):
        sql = ("SELECT a.val, b.val FROM a, b WHERE a.id = b.id "
               "AND (a.val > 3 OR b.val > 3)")
        program = lowered_program(catalog, sql, fusion=True)
        kinds = op_kinds(program)
        assert "mask_apply" not in kinds
        extract = next(op for op in program.ops
                       if isinstance(op, ops.NonzeroExtract))
        assert extract.epilogue_predicates
        assert "mask_residual" in extract.fused_from

    def test_residual_fact_mask_fuses_into_value_fill(self, catalog):
        # residual-fact masks run before the aggregate product; the
        # residual-fill rule folds them into the ValueFill as a masked
        # operand fill (masked tuples are never placed), removing the
        # last standalone mask operator from the PR-4 fusion list.
        # (b carries the residual and gets folded; c stays as the B side.)
        sql = ("SELECT SUM(a.val), COUNT(*), c.g FROM a, b, c "
               "WHERE a.id = b.id AND a.w = c.w "
               "AND (a.val > 3 OR b.val > 3) "
               "GROUP BY c.g")
        program = lowered_program(catalog, sql, fusion=True)
        masks = [op for op in program.ops if isinstance(op, ops.MaskApply)]
        assert not any(m.role == "residual-fact" for m in masks)
        fill = next(op for op in program.ops
                    if isinstance(op, ops.ValueFill))
        assert fill.epilogue_predicates
        assert "mask_residual" in fill.fused_from
        # The fill's input was rewired onto the mask's producer.
        assert fill.left_input != "mask_residual"
        unfused = lowered_program(catalog, sql, fusion=False)
        assert any(
            m.role == "residual-fact"
            for m in unfused.ops if isinstance(m, ops.MaskApply)
        )

    def test_fusion_off_leaves_program_unfused(self, catalog):
        sql = ("SELECT SUM(a.val), COUNT(*), b.g FROM a, b "
               "WHERE a.id = b.id GROUP BY b.g HAVING COUNT(*) > 2")
        program = lowered_program(catalog, sql, fusion=False)
        assert not any(isinstance(op, BatchedGemm) for op in program.ops)
        assert "mask_apply" in op_kinds(program)
        assert "fused_from" not in program.describe()

    def test_fuse_program_does_not_mutate_input(self, catalog):
        sql = ("SELECT SUM(a.val), COUNT(*), b.g FROM a, b "
               "WHERE a.id = b.id GROUP BY b.g")
        original = lowered_program(catalog, sql, fusion=False)
        kinds_before = op_kinds(original)
        fused = fuse_program(original)
        assert op_kinds(original) == kinds_before
        assert fused is not original
        assert any(isinstance(op, BatchedGemm) for op in fused.ops)

    def test_program_without_rewrites_returned_unchanged(self, catalog):
        sql = "SELECT a.val, b.val FROM a, b WHERE a.id = b.id"
        program = lowered_program(catalog, sql, fusion=False)
        assert fuse_program(program) is program


# --------------------------------------------------------------------- #
# Execution equivalence
# --------------------------------------------------------------------- #


def sorted_rows(result):
    return sorted(map(tuple, result.require_table().rows()))


class TestFusedExecution:
    @pytest.fixture
    def catalog(self):
        return ssb_catalog(scale_factor=1, rows_per_sf=2500, seed=7)

    MULTI_AGG = (
        "SELECT d_year, SUM(lo_revenue) AS rev, COUNT(*) AS n, "
        "AVG(lo_quantity) AS q, SUM(lo_supplycost) AS cost "
        "FROM lineorder, ddate WHERE lo_orderdate = d_datekey "
        "GROUP BY d_year"
    )

    def test_fused_matches_unfused_dense(self, catalog):
        on = TCUDBEngine(catalog).execute(self.MULTI_AGG)
        off = TCUDBEngine(
            catalog, options=TCUDBOptions(fusion=False)
        ).execute(self.MULTI_AGG)
        assert_results_match(on, off, rel=TCU_REL, context="dense")

    def test_fused_matches_unfused_forced_sparse(self, catalog):
        # Exercises the direct-COO operand builder end to end.
        options_on = TCUDBOptions(force_strategy=Strategy.SPARSE)
        options_off = TCUDBOptions(force_strategy=Strategy.SPARSE,
                                   fusion=False)
        on = TCUDBEngine(catalog, options=options_on).execute(self.MULTI_AGG)
        off = TCUDBEngine(catalog,
                          options=options_off).execute(self.MULTI_AGG)
        assert on.extra["strategy"] == "sparse"
        assert_results_match(on, off, rel=TCU_REL, context="sparse")

    def test_fused_never_costs_more(self, catalog):
        for sql in (
            self.MULTI_AGG,
            "SELECT SUM(lo_revenue), d_year FROM lineorder, ddate "
            "WHERE lo_orderdate = d_datekey GROUP BY d_year "
            "HAVING COUNT(*) > 5",
        ):
            on = TCUDBEngine(catalog).execute(sql)
            off = TCUDBEngine(
                catalog, options=TCUDBOptions(fusion=False)
            ).execute(sql)
            assert on.seconds <= off.seconds + 1e-12, sql

    def test_cost_ledger_names_program_operators(self, catalog):
        run = TCUDBEngine(catalog).execute(self.MULTI_AGG)
        program = run.extra["program"]
        op_ids = {op.id for op in program.ops}
        ledger = run.extra["operator_costs"]
        assert ledger
        assert {cost.op_id for cost in ledger} <= op_ids
        assert any(cost.kind == "batched_gemm" for cost in ledger)

    def test_generated_code_has_fused_sections(self, catalog):
        run = TCUDBEngine(catalog).execute(
            self.MULTI_AGG + " HAVING COUNT(*) > 5"
        )
        source = run.extra["generated_code"].source
        assert "wmma_batched_gemm" in source or "tcu_spmm_batched" in source
        assert "fused epilogue" in source

    def test_analytic_matches_real_simulated_seconds(self, catalog):
        real = TCUDBEngine(catalog, mode=ExecutionMode.REAL).execute(
            self.MULTI_AGG
        )
        analytic = TCUDBEngine(catalog, mode=ExecutionMode.ANALYTIC).execute(
            self.MULTI_AGG
        )
        assert analytic.n_rows == real.n_rows
        assert analytic.seconds == pytest.approx(real.seconds, rel=1e-6)


FUZZ_QUERIES = 120


def test_property_fuzz_corpus_fused_equals_unfused():
    """Fused-vs-unfused program equivalence over the fuzz corpus: same
    rows as each other and as the oracle, fused simulated cost never
    higher, consistent cost ledgers."""
    catalog = ssb_catalog(scale_factor=1, rows_per_sf=1500, seed=13)
    oracle = create_engine("reference", catalog)
    fused_engine = TCUDBEngine(catalog)
    unfused_engine = TCUDBEngine(catalog, options=TCUDBOptions(fusion=False))
    generator = QueryGenerator(make_rng(FUZZ_SEED))
    failures: list[str] = []
    batched_seen = 0
    for index in range(FUZZ_QUERIES):
        sql = generator.generate()
        try:
            expected = oracle.execute(sql)
            fused = fused_engine.execute(sql)
            unfused = unfused_engine.execute(sql)
            assert_results_match(fused, expected, rel=TCU_REL,
                                 context=f"fused #{index}: {sql}")
            assert_results_match(unfused, expected, rel=TCU_REL,
                                 context=f"unfused #{index}: {sql}")
            both_native = not (fused.extra.get("fallback_reason")
                               or unfused.extra.get("fallback_reason"))
            if both_native:
                # Fusion must never increase simulated cost.
                assert fused.seconds <= unfused.seconds + 1e-12, (
                    f"#{index} fused {fused.seconds} > unfused "
                    f"{unfused.seconds}: {sql}"
                )
                program = fused.extra["program"]
                op_ids = {op.id for op in program.ops}
                ledger_ids = {c.op_id for c in fused.extra["operator_costs"]}
                assert ledger_ids <= op_ids, f"#{index}: {sql}"
                if any(isinstance(op, BatchedGemm) for op in program.ops):
                    batched_seen += 1
        except AssertionError as error:
            failures.append(f"-- fuzz #{index}\n{sql}\n   {error}")
        except Exception as error:  # engine crash: also a bug
            failures.append(
                f"-- fuzz #{index} raised {type(error).__name__}: "
                f"{error}\n{sql}"
            )
    if failures:
        pytest.fail(
            f"{len(failures)}/{FUZZ_QUERIES} fuzzed queries diverged "
            "(fused vs unfused vs oracle); reproducing SQL below\n"
            + "\n".join(failures[:10])
        )
    assert batched_seen >= 10, (
        f"only {batched_seen} fuzzed queries exercised BatchedGemm"
    )


# --------------------------------------------------------------------- #
# Statistics-derived selectivities (formerly hard-coded 0.5/conjunct)
# --------------------------------------------------------------------- #


class TestSelectivity:
    STATS = ColumnStats(min_value=0.0, max_value=100.0, n_distinct=50,
                        n_rows=1000)

    def _stats_of(self, expr):
        from repro.sql.ast_nodes import ColumnRef

        return self.STATS if isinstance(expr, ColumnRef) else None

    def _predicates(self, sql_where):
        bound = self._bound(sql_where)
        return list(bound.filters["t"]) + list(bound.residuals)

    def _bound(self, sql_where):
        catalog = Catalog()
        catalog.register(Table.from_dict("t", {
            "x": np.arange(100), "y": np.arange(100),
        }))
        return bind(parse(f"SELECT x FROM t WHERE {sql_where}"),
                    catalog, None)

    def _selectivity(self, sql_where) -> float:
        predicates = self._predicates(sql_where)
        assert predicates
        return conjunction_selectivity(predicates, self._stats_of)

    def test_equality_uses_distinct_count(self):
        assert self._selectivity("x = 4") == pytest.approx(1 / 50)

    def test_range_uses_value_span(self):
        assert self._selectivity("x < 25") == pytest.approx(0.25)
        assert self._selectivity("x >= 75") == pytest.approx(0.25)

    def test_between_intersects_ranges(self):
        assert self._selectivity(
            "x BETWEEN 25 AND 75"
        ) == pytest.approx(0.5)

    def test_in_list_scales_with_cardinality(self):
        assert self._selectivity(
            "x IN (1, 2, 3, 4, 5)"
        ) == pytest.approx(5 / 50)

    def test_negation_complements(self):
        assert self._selectivity("NOT (x < 25)") == pytest.approx(0.75)

    def test_disjunction_inclusion_exclusion(self):
        assert self._selectivity(
            "(x < 25 OR y < 25)"
        ) == pytest.approx(1 - 0.75 * 0.75)

    def test_unknown_expression_defaults_to_half(self):
        predicates = self._predicates("x + y > 10")
        assert predicate_selectivity(
            predicates[0], lambda expr: None
        ) == pytest.approx(0.5)

    def test_conjunction_multiplies_and_floors(self):
        predicates = self._predicates("x = 4 AND y = 7")
        assert conjunction_selectivity(
            predicates, self._stats_of
        ) == pytest.approx(1 / 2500)
        assert conjunction_selectivity(
            predicates * 20, self._stats_of
        ) >= 1e-4

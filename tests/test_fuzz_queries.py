"""Seeded property-based fuzzing: TCUDB-with-fallback vs the oracle.

A small random query generator over the SSB schema emits ~200 queries —
single-table and star-join shapes, **chain joins** (dimension-to-
dimension links that break the star, exercising multiway lowering and
the hybrid pre-stage), **non-equi join predicates** (<, <=, >, >=
between tables, the comparison-matrix encoding), random filters
(comparisons, BETWEEN, IN / NOT IN lists, NOT-wrapped conjuncts,
single-table ORs and **cross-table ORs** that exercise the residual
``MaskApply`` path), SUM/COUNT/AVG/MIN/MAX aggregates with arithmetic
arguments, GROUP BY, HAVING (including negated HAVING), ORDER BY and
LIMIT.  Every query runs through TCUDB (native, hybrid or fallback) and
ReferenceEngine; mismatches fail with the reproducing SQL in the
message, and per-shape path assertions pin which execution paths each
new shape must reach.

The RNG is fixed through :func:`repro.common.rng.make_rng`, so a failure
reproduces by seed + query index alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from differential_utils import assert_results_match
from repro.common.rng import make_rng
from repro.datasets.ssb import REGIONS, ssb_catalog
from repro.engine import create_engine

FUZZ_SEED = 20220612
N_QUERIES = 200
TCU_REL = 2e-3

# -- SSB schema description for the generator ------------------------------- #

FACT_NUMERIC = {
    "lo_quantity": (1, 50),
    "lo_discount": (0, 10),
    "lo_extendedprice": (900, 100_000),
    "lo_revenue": (900, 100_000),
    "lo_supplycost": (500, 60_000),
}

# dimension table -> (fact fk column, dimension key column)
DIM_JOINS = {
    "ddate": ("lo_orderdate", "d_datekey"),
    "customer": ("lo_custkey", "c_custkey"),
    "supplier": ("lo_suppkey", "s_suppkey"),
    "part": ("lo_partkey", "p_partkey"),
}


def _nations() -> list[str]:
    return [
        f"{region.replace(' ', '')[:7]}_N{i}"
        for region in REGIONS
        for i in range(5)
    ]


def _cities() -> list[str]:
    return [f"{nation}_C{j}" for nation in _nations() for j in range(10)]


DIM_STRING_COLS = {
    "customer": {
        "c_region": REGIONS,
        "c_nation": _nations(),
        "c_city": _cities(),
    },
    "supplier": {
        "s_region": REGIONS,
        "s_nation": _nations(),
        "s_city": _cities(),
    },
    "part": {
        "p_mfgr": [f"MFGR#{m}" for m in range(1, 6)],
        "p_category": [f"MFGR#{m}{c}" for m in range(1, 6)
                       for c in range(1, 6)],
    },
}

DIM_NUMERIC_COLS = {
    "ddate": {
        "d_year": (1992, 1998),
        "d_month": (1, 12),
        "d_weeknuminyear": (1, 52),
    },
}

# numeric columns usable as aggregate arguments, per table
TABLE_NUMERIC = {
    "lineorder": FACT_NUMERIC,
    "ddate": DIM_NUMERIC_COLS["ddate"],
    "customer": {"c_custkey": (1, 300)},
    "supplier": {"s_suppkey": (1, 40)},
    "part": {"p_partkey": (1, 1000)},
}

# group-by candidates per dimension (strings and small ints)
DIM_GROUP_COLS = {
    "ddate": ["d_year", "d_month", "d_yearmonth"],
    "customer": ["c_region", "c_nation"],
    "supplier": ["s_region", "s_nation"],
    "part": ["p_mfgr", "p_category"],
}

AGG_FUNCS = ["sum", "count", "avg", "min", "max"]


class QueryGenerator:
    """Draws random-but-valid SQL over the SSB schema.

    ``last_shape`` records which structural shape the most recent
    ``generate()`` call drew ("single" | "star" | "chain" | "nonequi"),
    so the fuzz loop can assert per-shape execution paths.
    """

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self.last_shape = ""

    def _choice(self, options):
        return options[int(self.rng.integers(0, len(options)))]

    # -- filters --------------------------------------------------------- #

    def _numeric_predicate(self, column: str, lo: int, hi: int) -> str:
        kind = self._choice(["cmp", "cmp", "between", "in", "eq"])
        if kind == "between":
            a = int(self.rng.integers(lo, hi + 1))
            b = int(self.rng.integers(lo, hi + 1))
            return f"{column} BETWEEN {min(a, b)} AND {max(a, b)}"
        if kind == "in":
            count = int(self.rng.integers(2, 5))
            values = sorted(
                {int(self.rng.integers(lo, hi + 1)) for _ in range(count)}
            )
            negated = "NOT " if self.rng.random() < 0.3 else ""
            return f"{column} {negated}IN ({', '.join(map(str, values))})"
        value = int(self.rng.integers(lo, hi + 1))
        op = "=" if kind == "eq" else self._choice(["<", "<=", ">", ">="])
        return f"{column} {op} {value}"

    def _string_predicate(self, column: str, pool: list[str]) -> str:
        if self.rng.random() < 0.4:
            count = int(self.rng.integers(2, 4))
            values = sorted({self._choice(pool) for _ in range(count)})
            quoted = ", ".join(f"'{v}'" for v in values)
            negated = "NOT " if self.rng.random() < 0.25 else ""
            return f"{column} {negated}IN ({quoted})"
        return f"{column} = '{self._choice(pool)}'"

    def _table_predicate(self, table: str) -> str | None:
        if table == "lineorder":
            column = self._choice(sorted(FACT_NUMERIC))
            lo, hi = FACT_NUMERIC[column]
            return self._numeric_predicate(column, lo, hi)
        if table in DIM_STRING_COLS and (
            table not in DIM_NUMERIC_COLS or self.rng.random() < 0.7
        ):
            column = self._choice(sorted(DIM_STRING_COLS[table]))
            return self._string_predicate(column,
                                          DIM_STRING_COLS[table][column])
        if table in DIM_NUMERIC_COLS:
            column = self._choice(sorted(DIM_NUMERIC_COLS[table]))
            lo, hi = DIM_NUMERIC_COLS[table][column]
            return self._numeric_predicate(column, lo, hi)
        return None

    def _filters(self, tables: list[str]) -> list[str]:
        conjuncts: list[str] = []
        for _ in range(int(self.rng.integers(0, 3))):
            table = self._choice(tables)
            predicate = self._table_predicate(table)
            if predicate is None:
                continue
            roll = self.rng.random()
            if roll < 0.2:
                # Wrap two same-table predicates in an OR group.
                other = self._table_predicate(table)
                if other is not None and other != predicate:
                    predicate = f"({predicate} OR {other})"
            elif roll < 0.45 and len(tables) >= 2:
                # Cross-table OR: a residual conjunct exercising the
                # MaskApply path (fold-side or pair-side).
                others = [t for t in tables if t != table]
                other = self._table_predicate(self._choice(others))
                if other is not None:
                    predicate = f"({predicate} OR {other})"
            if self.rng.random() < 0.15:
                predicate = f"NOT ({predicate})"
            conjuncts.append(predicate)
        return conjuncts

    # -- aggregates ------------------------------------------------------ #

    def _agg_argument(self, columns: list[str]) -> str:
        shape = self._choice(["col", "col", "product", "difference", "scale"])
        first = self._choice(columns)
        if shape == "product":
            return f"{first} * {self._choice(columns)}"
        if shape == "difference":
            return f"{first} - {self._choice(columns)}"
        if shape == "scale":
            return f"{first} * {int(self.rng.integers(2, 10))}"
        return first

    def _aggregate_item(self, index: int, columns: list[str]) -> str:
        func = self._choice(AGG_FUNCS)
        if func == "count" and self.rng.random() < 0.5:
            return f"COUNT(*) AS a{index}"
        return f"{func.upper()}({self._agg_argument(columns)}) AS a{index}"

    # -- query shapes ---------------------------------------------------- #

    def generate(self) -> str:
        roll = self.rng.random()
        if roll < 0.10:
            self.last_shape = "chain"
            return self._chain_join()
        if roll < 0.20:
            self.last_shape = "nonequi"
            return self._nonequi_join()
        if roll < 0.48:
            self.last_shape = "single"
            return self._single_table()
        self.last_shape = "star"
        return self._star_join(n_dims=int(self.rng.integers(1, 4)))

    def _chain_join(self) -> str:
        """Joins that chain through a dimension instead of fanning out
        of the fact table — beyond the star pattern (multiway lowering
        for projections, hybrid pre-stage for aggregates)."""
        aggregate = self.rng.random() < 0.6
        if self.rng.random() < 0.5:
            tables = ["lineorder", "customer", "supplier"]
            joins = ["lo_custkey = c_custkey", "c_city = s_city"]
            group_tables = ["customer", "supplier"]
        else:
            tables = ["customer", "supplier"]
            joins = [f"c_{self._choice(['city', 'nation'])} = "
                     f"s_{self._choice(['city', 'nation'])}"]
            # Mismatched levels (city vs nation) produce empty joins;
            # regenerate as the matching pair.
            left, right = joins[0].split(" = ")
            if left[2:] != right[2:]:
                level = left[2:]
                joins = [f"c_{level} = s_{level}"]
            group_tables = ["customer", "supplier"]
        return self._assemble(
            tables=tables, joins=joins, group_tables=group_tables,
            aggregate=aggregate,
        )

    def _nonequi_join(self) -> str:
        """A <, <=, >, >= join predicate between two dimensions: the
        Section-3.4 comparison-matrix encoding (JOIN_2WAY) for
        projections, hybrid for aggregates."""
        op = self._choice(["<", "<=", ">", ">="])
        aggregate = self.rng.random() < 0.5
        return self._assemble(
            tables=["customer", "supplier"],
            joins=[f"c_custkey {op} s_suppkey"],
            group_tables=["customer"],
            aggregate=aggregate,
        )

    def _single_table(self) -> str:
        if self.rng.random() < 0.6:
            return self._assemble(
                tables=["lineorder"], joins=[], group_tables=[],
                aggregate=self.rng.random() < 0.75,
            )
        table = self._choice(sorted(DIM_JOINS))
        return self._assemble(
            tables=[table], joins=[], group_tables=[table],
            aggregate=self.rng.random() < 0.75,
        )

    def _star_join(self, n_dims: int) -> str:
        dims = list(self.rng.choice(sorted(DIM_JOINS), size=n_dims,
                                    replace=False))
        joins = [
            f"{DIM_JOINS[dim][0]} = {DIM_JOINS[dim][1]}" for dim in dims
        ]
        return self._assemble(
            tables=["lineorder"] + dims, joins=joins, group_tables=dims,
            aggregate=self.rng.random() < 0.8,
        )

    def _assemble(self, tables: list[str], joins: list[str],
                  group_tables: list[str], aggregate: bool) -> str:
        # Aggregate arguments come from the fact table in star shapes,
        # or from the single table's own numeric columns.
        agg_source = "lineorder" if "lineorder" in tables else tables[0]
        numeric_cols = sorted(TABLE_NUMERIC[agg_source])
        group_cols: list[str] = []
        if aggregate and group_tables and self.rng.random() < 0.8:
            n_keys = int(self.rng.integers(1, 3))
            candidates = sorted({
                self._choice(DIM_GROUP_COLS[table])
                for table in (self._choice(group_tables)
                              for _ in range(n_keys))
                if table in DIM_GROUP_COLS
            })
            group_cols = candidates
        items: list[str] = []
        if aggregate:
            items.extend(f"{col} AS g{i}" for i, col in enumerate(group_cols))
            for i in range(int(self.rng.integers(1, 3))):
                items.append(self._aggregate_item(i, numeric_cols))
        else:
            if "lineorder" in tables:
                items.append("lo_orderkey AS g0")
                column = self._choice(sorted(FACT_NUMERIC))
                if self.rng.random() < 0.4:
                    items.append(
                        f"{column} * 2 + 1 AS a0"
                    )
                else:
                    items.append(f"{column} AS a0")
            else:
                table = tables[0]
                items.append(f"{self._choice(DIM_GROUP_COLS[table])} AS g0")
        conjuncts = joins + self._filters(tables)
        sql = f"SELECT {', '.join(items)} FROM {', '.join(tables)}"
        if conjuncts:
            sql += " WHERE " + " AND ".join(conjuncts)
        if group_cols:
            sql += " GROUP BY " + ", ".join(group_cols)
        if aggregate and self.rng.random() < 0.3:
            if self.rng.random() < 0.5:
                having = f"COUNT(*) > {int(self.rng.integers(1, 40))}"
            elif self.rng.random() < 0.6:
                column = self._choice(numeric_cols)
                _, hi = TABLE_NUMERIC[agg_source][column]
                threshold = int(self.rng.integers(1, hi * 40))
                having = f"SUM({column}) > {threshold}"
            else:
                column = self._choice(numeric_cols)
                lo, hi = TABLE_NUMERIC[agg_source][column]
                threshold = int(self.rng.integers(lo, hi + 1))
                having = f"AVG({column}) > {threshold}"
            if self.rng.random() < 0.2:
                having = f"NOT ({having})"
            sql += f" HAVING {having}"
        if self.rng.random() < 0.5:
            aliases = [item.split(" AS ")[-1] for item in items]
            directions = [
                f"{alias} {self._choice(['ASC', 'DESC'])}"
                for alias in aliases
            ]
            # Order over every output column => total order up to full-row
            # duplicates, so LIMIT selects a well-defined row multiset.
            sql += " ORDER BY " + ", ".join(directions)
            if self.rng.random() < 0.5:
                sql += f" LIMIT {int(self.rng.integers(1, 40))}"
        return sql + ";"


@pytest.fixture(scope="module")
def fuzz_engines():
    catalog = ssb_catalog(scale_factor=1, rows_per_sf=2000, seed=13)
    return {
        name: create_engine(name, catalog)
        for name in ("reference", "tcudb")
    }


def test_fuzzed_queries_match_oracle(fuzz_engines):
    """~200 random queries: TCUDB (native, hybrid or fallback) equals the
    oracle, and every structural shape reaches its expected paths."""
    generator = QueryGenerator(make_rng(FUZZ_SEED))
    native = hybrid = fallback = 0
    shape_counts: dict[str, int] = {}
    shape_paths: dict[str, set] = {}
    failures: list[str] = []
    for index in range(N_QUERIES):
        sql = generator.generate()
        shape = generator.last_shape
        shape_counts[shape] = shape_counts.get(shape, 0) + 1
        try:
            oracle = fuzz_engines["reference"].execute(sql)
            tcu = fuzz_engines["tcudb"].execute(sql)
            if tcu.extra.get("fallback_reason"):
                fallback += 1
                path = "fallback"
            elif tcu.extra.get("executed_by") == "TCU-hybrid":
                hybrid += 1
                path = "hybrid"
            else:
                native += 1
                path = "native"
            shape_paths.setdefault(shape, set()).add(path)
            assert_results_match(
                tcu, oracle, rel=TCU_REL,
                context=f"fuzz #{index}: {sql}",
            )
        except AssertionError as error:
            failures.append(f"-- fuzz #{index}\n{sql}\n   {error}")
        except Exception as error:  # engine crash: also a bug
            failures.append(
                f"-- fuzz #{index} raised {type(error).__name__}: {error}\n"
                f"{sql}"
            )
    if failures:
        pytest.fail(
            f"{len(failures)}/{N_QUERIES} fuzzed queries diverged from the "
            "oracle; reproducing SQL below\n" + "\n".join(failures[:10])
        )
    # The generator must exercise all three TCU execution paths.
    assert native >= 20, f"only {native} fuzzed queries ran natively"
    assert hybrid >= 10, f"only {hybrid} fuzzed queries ran hybrid"
    assert fallback >= 20, f"only {fallback} fuzzed queries fell back"
    # The new shapes must occur and reach their expected paths: chain
    # aggregates run through the hybrid pre-stage, non-equi projections
    # through the native comparison-matrix join.
    assert shape_counts.get("chain", 0) >= 8, shape_counts
    assert shape_counts.get("nonequi", 0) >= 8, shape_counts
    assert "hybrid" in shape_paths.get("chain", set()), shape_paths
    assert "native" in shape_paths.get("nonequi", set()), shape_paths


def test_fuzzer_is_deterministic():
    """Same seed => same query text (reproducibility contract)."""
    first = QueryGenerator(make_rng(FUZZ_SEED))
    second = QueryGenerator(make_rng(FUZZ_SEED))
    for _ in range(25):
        assert first.generate() == second.generate()

"""Unit tests for the simulated GPU substrate."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, DeviceMemoryError, PrecisionError
from repro.hardware import (
    I7_7700K,
    RTX_2080,
    RTX_3090,
    get_device_profile,
    run_calibration,
)
from repro.hardware.memory import DeviceMemory
from repro.hardware.pcie import PCIeBus
from repro.tensor.precision import Precision


class TestDeviceMemory:
    def test_allocate_and_free(self):
        memory = DeviceMemory(capacity=1000)
        allocation = memory.allocate(400, "buf")
        assert memory.used == 400
        assert memory.available == 600
        memory.free(allocation)
        assert memory.used == 0

    def test_oom_raises_with_details(self):
        memory = DeviceMemory(capacity=100)
        memory.allocate(80)
        with pytest.raises(DeviceMemoryError) as excinfo:
            memory.allocate(50)
        assert excinfo.value.requested == 50
        assert excinfo.value.available == 20

    def test_peak_tracking(self):
        memory = DeviceMemory(capacity=1000)
        a = memory.allocate(500)
        b = memory.allocate(300)
        memory.free(a)
        memory.free(b)
        assert memory.peak == 800
        assert memory.used == 0

    def test_double_free_rejected(self):
        memory = DeviceMemory(capacity=10)
        allocation = memory.allocate(5)
        memory.free(allocation)
        with pytest.raises(ValueError):
            memory.free(allocation)

    def test_negative_allocation_rejected(self):
        memory = DeviceMemory(capacity=10)
        with pytest.raises(ValueError):
            memory.allocate(-1)

    def test_fits(self):
        memory = DeviceMemory(capacity=100)
        assert memory.fits(100)
        assert not memory.fits(101)

    def test_reset(self):
        memory = DeviceMemory(capacity=100)
        memory.allocate(60)
        memory.reset()
        assert memory.used == 0
        assert memory.peak == 0


class TestPCIe:
    def test_transfer_time_scales_with_bytes(self):
        bus = PCIeBus(bandwidth=16e9)
        t1 = bus.h2d_seconds(16e9)  # 1 second of traffic
        t2 = bus.h2d_seconds(32e9)
        assert t1 == pytest.approx(1.0, rel=0.01)
        assert t2 > t1

    def test_overlap_divides_bandwidth_cost(self):
        bus = PCIeBus(bandwidth=16e9)
        plain = bus.d2h_seconds(1e9)
        overlapped = bus.d2h_seconds(1e9, overlap=2.0)
        assert overlapped < plain

    def test_traffic_counters(self):
        bus = PCIeBus(bandwidth=1e9)
        bus.h2d_seconds(100)
        bus.d2h_seconds(200)
        assert bus.bytes_h2d == 100
        assert bus.bytes_d2h == 200
        bus.reset_counters()
        assert bus.bytes_h2d == 0


class TestProfiles:
    def test_lookup_by_name(self):
        assert get_device_profile("rtx3090") is RTX_3090
        assert get_device_profile("RTX 2080") is RTX_2080

    def test_unknown_profile(self):
        with pytest.raises(ConfigError):
            get_device_profile("h100")

    def test_tcu_rate_scales_with_precision(self):
        fp16 = RTX_3090.tcu_tflops(Precision.FP16)
        int8 = RTX_3090.tcu_tflops(Precision.INT8)
        int4 = RTX_3090.tcu_tflops(Precision.INT4)
        assert int8 == pytest.approx(2 * fp16)
        assert int4 == pytest.approx(4 * fp16)

    def test_fp32_not_tcu_compatible(self):
        with pytest.raises(ConfigError):
            RTX_3090.tcu_tflops(Precision.FP32)

    def test_paper_peaks(self):
        # Section 2.1: 63 TFLOPS on TCUs, 19 TFLOPS on CUDA cores.
        assert RTX_3090.tcu_tflops_fp16 == 63.0
        assert RTX_3090.cuda_tflops == 19.0
        assert RTX_3090.memory_bytes == 24 * 1024**3


class TestTensorCoreNumerics:
    def test_indicator_matmul_exact(self, device, rng):
        a = rng.integers(0, 2, (50, 30)).astype(float)
        b = rng.integers(0, 2, (30, 40)).astype(float)
        for precision in (Precision.FP16, Precision.INT8, Precision.INT4):
            result = device.tcu.matmul(a, b, precision)
            assert np.array_equal(result, a @ b), precision

    def test_fp16_rounds_large_values(self, device, rng):
        a = rng.integers(-(2**15), 2**15, (20, 64)).astype(float)
        b = rng.integers(-(2**15), 2**15, (64, 20)).astype(float)
        result = device.tcu.matmul(a, b, Precision.FP16)
        reference = a @ b
        rel = np.abs(result - reference).sum() / np.abs(reference).sum()
        assert 0 < rel < 1e-3  # small but nonzero rounding error

    def test_fp16_scaling_handles_2pow31(self, device, rng):
        a = rng.integers(-(2**31), 2**31, (8, 32)).astype(float)
        b = rng.integers(-(2**31), 2**31, (32, 8)).astype(float)
        result = device.tcu.matmul(a, b, Precision.FP16)
        reference = a @ b
        rel = np.abs(result - reference).sum() / np.abs(reference).sum()
        assert rel < 1e-3

    def test_int_range_enforced(self, device):
        a = np.full((4, 4), 300.0)
        with pytest.raises(PrecisionError):
            device.tcu.matmul(a, a, Precision.INT8)
        with pytest.raises(PrecisionError):
            device.tcu.matmul(np.full((4, 4), 9.0), np.ones((4, 4)),
                              Precision.INT4)

    def test_incompatible_shapes(self, device):
        with pytest.raises(ValueError):
            device.tcu.matmul(np.ones((3, 4)), np.ones((5, 2)))

    def test_matmul_seconds_follow_equation3(self, device):
        m = n = k = 4096
        seconds = device.tcu.matmul_seconds(m, n, k, Precision.FP16)
        expected = 2.0 * m * n * k / (63e12) + RTX_3090.kernel_launch_s
        assert seconds == pytest.approx(expected)

    def test_int8_twice_as_fast_as_fp16(self, device):
        fp16 = device.tcu.matmul_seconds(4096, 4096, 4096, Precision.FP16)
        int8 = device.tcu.matmul_seconds(4096, 4096, 4096, Precision.INT8)
        assert int8 < fp16

    def test_spmm_seconds_counts_tile_pairs(self, device):
        zero = device.tcu.spmm_seconds(0)
        some = device.tcu.spmm_seconds(1000)
        assert some > zero > 0


class TestCudaCores:
    def test_gemm_slower_than_tcu(self, device):
        cuda = device.cuda.matmul_seconds(4096, 4096, 4096)
        tcu = device.tcu.matmul_seconds(4096, 4096, 4096)
        assert cuda > tcu

    def test_figure3_speedup_range(self, device):
        # Paper: TCUs outperform CUDA cores by up to ~5x, >= ~2.8x at 16K.
        for dim in (4096, 8192, 16384):
            ratio = (device.cuda.matmul_seconds(dim, dim, dim)
                     / device.tcu.matmul_seconds(dim, dim, dim))
            assert 2.0 < ratio < 6.0

    def test_join_costs_monotone_in_pairs(self, device):
        a = device.cuda.join_materialize_seconds(1000)
        b = device.cuda.join_materialize_seconds(100000)
        assert b > a

    def test_numerics_match_float32_pipeline(self, device, rng):
        a = rng.normal(size=(16, 8))
        b = rng.normal(size=(8, 12))
        result = device.cuda.matmul(a, b)
        assert np.allclose(result, a @ b, rtol=1e-5, atol=1e-5)


class TestCalibration:
    def test_reports_paper_like_rates(self, device):
        report = run_calibration(device, I7_7700K)
        assert report.pcie_bandwidth == pytest.approx(16e9, rel=0.05)
        assert report.tcu_tflops[Precision.FP16] == pytest.approx(63, rel=0.1)
        assert report.tcu_tflops[Precision.INT4] > (
            report.tcu_tflops[Precision.FP16]
        )

    def test_density_threshold_near_paper_value(self, device):
        # Paper Section 5.2: crossover around 0.04% on the RTX 3090.
        report = run_calibration(device)
        assert 1e-4 < report.density_threshold < 1.5e-3

    def test_device_reset(self, device):
        device.memory.allocate(1024)
        device.h2d_seconds(100)
        device.reset()
        assert device.memory.used == 0
        assert device.pcie.bytes_h2d == 0

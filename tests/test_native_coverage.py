"""Regression guard: HAVING and same-schema residual ORs stay native.

The TensorProgram refactor made two query classes first-class TCU
citizens instead of whole-query fallbacks:

* **HAVING-only** queries — star joins whose only "exotic" construct is
  a HAVING clause, lowered to a ``MaskApply`` over the aggregate output
  grid;
* **same-schema residual-OR** queries — cross-table OR conjuncts over
  tables already joined by the query, lowered to a ``MaskApply`` over
  the folded fact side (aggregates) or the extracted pairs (joins).

This suite is the CI tier-1 gate for that property: across a
differential corpus of both classes, **zero queries may report a
``pattern``-kind fallback** (a cost-based decline would be a pricing
bug at these catalog sizes and fails too), every query must carry an
inspectable generated program, and every result must equal the
ReferenceEngine oracle.
"""

from __future__ import annotations

import pytest

from differential_utils import assert_results_match
from repro.datasets.microbench import microbench_catalog
from repro.datasets.ssb import ssb_catalog
from repro.engine.reference import ReferenceEngine
from repro.engine.tcudb import TCUDBEngine

TCU_REL = 2e-3

HAVING_ONLY = [
    # Star joins whose only obstacle is the HAVING clause.
    "SELECT SUM(A.Val) AS s, B.Val FROM A, B WHERE A.ID = B.ID "
    "GROUP BY B.Val HAVING SUM(A.Val) > 500",
    "SELECT SUM(A.Val) AS s, B.Val FROM A, B WHERE A.ID = B.ID "
    "GROUP BY B.Val HAVING COUNT(*) > 25",
    "SELECT COUNT(*) AS n, B.Val FROM A, B WHERE A.ID = B.ID "
    "GROUP BY B.Val HAVING AVG(A.Val) > 40 ORDER BY n DESC",
    "SELECT SUM(A.Val * 2) AS s, B.Val FROM A, B WHERE A.ID = B.ID "
    "GROUP BY B.Val HAVING SUM(A.Val) > 200 AND COUNT(*) > 10",
]

SSB_HAVING_ONLY = [
    "SELECT d_year, SUM(lo_revenue) AS rev FROM lineorder, ddate "
    "WHERE lo_orderdate = d_datekey GROUP BY d_year "
    "HAVING SUM(lo_revenue) > 1000000 ORDER BY d_year",
    "SELECT c_region, COUNT(*) AS n FROM lineorder, customer "
    "WHERE lo_custkey = c_custkey GROUP BY c_region "
    "HAVING COUNT(*) > 100 ORDER BY c_region",
    "SELECT d_year, c_region, SUM(lo_revenue) AS rev "
    "FROM lineorder, ddate, customer "
    "WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey "
    "GROUP BY d_year, c_region HAVING SUM(lo_revenue) > 500000 "
    "ORDER BY d_year, c_region",
]

RESIDUAL_OR = [
    # Cross-table ORs over tables the query already joins.
    "SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID "
    "AND (A.Val > 15 OR B.Val < 5)",
    "SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID "
    "AND (A.Val < 10 OR B.Val > 20) ORDER BY A.Val DESC LIMIT 10",
]

SSB_RESIDUAL_OR = [
    "SELECT c_region, SUM(lo_revenue) AS rev "
    "FROM lineorder, customer, ddate "
    "WHERE lo_custkey = c_custkey AND lo_orderdate = d_datekey "
    "AND (lo_quantity < 10 OR d_year > 1995) "
    "GROUP BY c_region ORDER BY c_region",
    "SELECT d_year, SUM(lo_extendedprice) AS v "
    "FROM lineorder, ddate, supplier "
    "WHERE lo_orderdate = d_datekey AND lo_suppkey = s_suppkey "
    "AND (lo_discount > 5 OR s_region = 'ASIA') "
    "GROUP BY d_year ORDER BY d_year",
]


@pytest.fixture(scope="module")
def micro_engines():
    catalog = microbench_catalog(700, 24, seed=3)
    return TCUDBEngine(catalog), ReferenceEngine(catalog)


@pytest.fixture(scope="module")
def ssb_engines():
    catalog = ssb_catalog(scale_factor=1, rows_per_sf=2000, seed=13)
    return TCUDBEngine(catalog), ReferenceEngine(catalog)


def _assert_native(tcu_engine, oracle_engine, sql):
    run = tcu_engine.execute(sql)
    reason = run.extra.get("fallback_reason")
    kind = run.extra.get("fallback_kind")
    assert kind != "pattern", (
        f"pattern-rejection fallback for a native-class query: "
        f"{reason!r}\n  query: {sql}"
    )
    assert not reason, (
        f"native-class query left the TCU path ({kind}: {reason!r})\n"
        f"  query: {sql}"
    )
    # Every TCU-executed query carries an inspectable generated program.
    assert run.extra.get("generated_code") is not None, sql
    assert run.extra.get("program_listing"), sql
    assert_results_match(run, oracle_engine.execute(sql), rel=TCU_REL,
                         context=sql)


@pytest.mark.parametrize("sql", HAVING_ONLY)
def test_having_only_micro(micro_engines, sql):
    _assert_native(*micro_engines, sql)


@pytest.mark.parametrize("sql", SSB_HAVING_ONLY)
def test_having_only_ssb(ssb_engines, sql):
    _assert_native(*ssb_engines, sql)


@pytest.mark.parametrize("sql", RESIDUAL_OR)
def test_residual_or_micro(micro_engines, sql):
    _assert_native(*micro_engines, sql)


@pytest.mark.parametrize("sql", SSB_RESIDUAL_OR)
def test_residual_or_ssb(ssb_engines, sql):
    _assert_native(*ssb_engines, sql)


def test_native_classes_report_zero_pattern_fallbacks(
    micro_engines, ssb_engines
):
    """The aggregate count the CI step gates on: 0 pattern rejections
    across the full corpus of both classes."""
    pattern_rejections = []
    for engines, corpus in (
        (micro_engines, HAVING_ONLY + RESIDUAL_OR),
        (ssb_engines, SSB_HAVING_ONLY + SSB_RESIDUAL_OR),
    ):
        tcu_engine, _ = engines
        for sql in corpus:
            run = tcu_engine.execute(sql)
            if run.extra.get("fallback_kind") == "pattern":
                pattern_rejections.append(
                    (sql, run.extra.get("fallback_reason"))
                )
    assert pattern_rejections == []

"""Parallel morsel execution: determinism, cancellation, thread safety.

The contract under test (docs/architecture.md, § parallel morsels):
fanning independent chunks across N workers and merging partials in
submission order produces output **bit-identical** to the sequential
executor — same rows, same float accumulation order — for every N and
every chunk size.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.common.errors import ConfigError, QueryCancelled
from repro.common.rng import make_rng
from repro.datasets.ssb import ssb_catalog
from repro.engine.parallel import (
    MAX_WORKERS,
    CancellationToken,
    parallel_map,
    workers_policy,
)
from repro.engine.reference import ReferenceEngine
from repro.engine.tcudb import TCUDBEngine, TCUDBOptions
from repro.storage.table import Table
from repro.workloads import SSB_QUERIES
from test_fuzz_queries import FUZZ_SEED, QueryGenerator


@pytest.fixture(scope="module")
def catalog():
    return ssb_catalog(scale_factor=1, rows_per_sf=4000, seed=23)


def rows_of(result):
    return sorted(map(tuple, result.require_table().rows()))


# --------------------------------------------------------------------------- #
# The pool primitives
# --------------------------------------------------------------------------- #


class TestWorkersPolicy:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert workers_policy() == 1

    def test_override_and_env(self, monkeypatch):
        assert workers_policy(4) == 4
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert workers_policy() == 3
        assert workers_policy(2) == 2  # explicit override wins
        assert workers_policy(10_000) == MAX_WORKERS

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(ConfigError):
            workers_policy(0)
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        with pytest.raises(ConfigError):
            workers_policy()


class TestParallelMap:
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_submission_order_preserved(self, workers):
        items = list(range(97))
        out = list(parallel_map(lambda i: i * i, items, workers))
        assert out == [i * i for i in items]

    def test_worker_exception_propagates(self):
        def boom(i):
            if i == 5:
                raise ValueError("chunk 5 failed")
            return i

        with pytest.raises(ValueError, match="chunk 5"):
            list(parallel_map(boom, range(20), 4))

    def test_cancellation_stops_the_stream(self):
        token = CancellationToken()
        seen = []

        def work(i):
            seen.append(i)
            if i == 3:
                token.cancel("test cancel")
            return i

        with pytest.raises(QueryCancelled):
            list(parallel_map(work, range(10_000), 2, token=token))
        assert len(seen) < 10_000

    def test_deadline_token_self_fires(self):
        token = CancellationToken(deadline_s=0.0)
        with pytest.raises(QueryCancelled, match="time budget"):
            token.raise_if_cancelled()
        assert token.cancelled


# --------------------------------------------------------------------------- #
# Equivalence: parallel output is bit-identical to sequential
# --------------------------------------------------------------------------- #


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("chunk_rows", [256, 1024])
    def test_reference_streaming_fuzz(self, catalog, workers, chunk_rows):
        generator = QueryGenerator(make_rng(FUZZ_SEED))
        sequential = ReferenceEngine(catalog, streaming=True,
                                     chunk_rows=chunk_rows)
        parallel = ReferenceEngine(catalog, streaming=True,
                                   chunk_rows=chunk_rows, workers=workers)
        divergences = []
        for _ in range(25):
            sql = generator.generate()
            a = rows_of(sequential.execute(sql))
            b = rows_of(parallel.execute(sql))
            if a != b:  # bit-identical, not approximately equal
                divergences.append(sql)
        assert not divergences, divergences

    @pytest.mark.parametrize("workers", [2, 4])
    def test_tcudb_ssb_flights(self, catalog, workers):
        sequential = TCUDBEngine(catalog,
                                 options=TCUDBOptions(chunk_rows=512))
        parallel = TCUDBEngine(
            catalog,
            options=TCUDBOptions(chunk_rows=512, workers=workers),
        )
        for query_id, sql in sorted(SSB_QUERIES.items()):
            a = sequential.execute(sql)
            b = parallel.execute(sql)
            assert rows_of(a) == rows_of(b), query_id
            # Parallelism must not change routing decisions.
            assert (a.extra.get("executed_by")
                    == b.extra.get("executed_by")), query_id

    def test_pruning_counters_deterministic(self, catalog):
        sql = ("SELECT SUM(lo_revenue) AS r FROM lineorder "
               "WHERE lo_quantity < 10")
        sequential = ReferenceEngine(catalog, streaming=True, chunk_rows=256)
        parallel = ReferenceEngine(catalog, streaming=True, chunk_rows=256,
                                   workers=4)
        a = sequential.execute(sql)
        b = parallel.execute(sql)
        assert a.extra["chunks_pruned"] == b.extra["chunks_pruned"]
        assert a.extra["chunks_scanned"] == b.extra["chunks_scanned"]


# --------------------------------------------------------------------------- #
# Cancellation mid-stream
# --------------------------------------------------------------------------- #


class TestCancellation:
    def test_cancel_mid_stream(self, catalog):
        token = CancellationToken()
        engine = ReferenceEngine(catalog, streaming=True, chunk_rows=64,
                                 cancel_token=token)
        cancelled_after = {"chunks": 0}

        original = ReferenceEngine.execute_bound

        # Cancel from a second thread shortly after execution starts.
        def cancel_soon():
            token.cancel("client disconnect")

        timer = threading.Timer(0.01, cancel_soon)
        timer.start()
        try:
            with pytest.raises(QueryCancelled, match="client disconnect"):
                while True:  # keep issuing until the token fires
                    engine.execute(SSB_QUERIES["Q3.1"])
                    cancelled_after["chunks"] += 1
        finally:
            timer.cancel()
        assert original is ReferenceEngine.execute_bound  # no monkeypatching

    def test_deadline_cancels_streaming_query(self, catalog):
        token = CancellationToken(deadline_s=0.0)
        engine = ReferenceEngine(catalog, streaming=True, chunk_rows=64,
                                 cancel_token=token, workers=2)
        with pytest.raises(QueryCancelled, match="time budget"):
            engine.execute(SSB_QUERIES["Q2.1"])


# --------------------------------------------------------------------------- #
# Chunk.stats thread safety
# --------------------------------------------------------------------------- #


class TestChunkStatsRace:
    def test_concurrent_stats_computation(self):
        """Hammer one chunk's lazy stats from many threads: every thread
        must observe the same (correct) object, never a torn compute."""
        rng = np.random.default_rng(99)
        table = Table.from_dict("t", {"a": rng.integers(0, 1000, 8192)})
        for _ in range(20):  # fresh chunk each round to re-race the cache
            chunk = table.chunked(8192).chunks[0]
            table._chunked = {}  # drop memoized partitioning
            results = [None] * 8
            barrier = threading.Barrier(8)

            def compute(slot, chunk=chunk, results=results, barrier=barrier):
                barrier.wait()
                results[slot] = chunk.stats("a")

            threads = [threading.Thread(target=compute, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r is results[0] for r in results)
            expected = table.column("a").data
            assert results[0].min_value == float(expected.min())
            assert results[0].max_value == float(expected.max())
            assert results[0].n_rows == expected.size

"""Prepared statements: `?`/@name placeholders, deferred binding, and
the differential guarantee that prepared execution is row-identical to
one-shot execution for every parameter binding.

Tier-1: runs in the default suite (and in the REPRO_WORKERS=2 CI leg,
which exercises the same paths with the morsel pool engaged).
"""

import pytest

from differential_utils import assert_results_match
from repro.common.errors import BindError, ParseError
from repro.datasets.ssb import ssb_catalog
from repro.engine import create_engine
from repro.sql.ast_nodes import Parameter
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse
from repro.sql.prepared import prepare_statement, render_statement
from repro.storage.types import DataType

TCU_REL = 2e-3


@pytest.fixture(scope="module")
def catalog():
    return ssb_catalog(scale_factor=1, rows_per_sf=2000, seed=13)


@pytest.fixture(scope="module")
def reference(catalog):
    return create_engine("reference", catalog)


@pytest.fixture(scope="module")
def tcudb(catalog):
    return create_engine("tcudb", catalog)


JOIN_AGG_TEMPLATE = (
    "select d.d_year, sum(lo.lo_revenue) from lineorder as lo, ddate as d "
    "where lo.lo_orderdate = d.d_datekey and d.d_year >= ? "
    "group by d.d_year order by d.d_year"
)


class TestPlaceholderParsing:
    def test_question_mark_tokenizes_as_punct(self):
        tokens = tokenize("select ? from t")
        marks = [t for t in tokens if t.value == "?"]
        assert len(marks) == 1
        assert marks[0].type == TokenType.PUNCT

    def test_positional_markers_numbered_left_to_right(self):
        statement = parse(
            "select a.x from a where a.x > ? and a.y < ? and a.z = ?"
        )
        names = [
            node.name
            for predicate in statement.where
            for node in predicate.left.walk()  # type: ignore[attr-defined]
            if isinstance(node, Parameter)
        ]
        # Parameters sit on the comparison right sides here.
        names = [
            node.name
            for predicate in statement.where
            for node in predicate.right.walk()  # type: ignore[attr-defined]
            if isinstance(node, Parameter)
        ]
        assert names == ["0", "1", "2"]

    def test_mixed_named_and_positional(self):
        statement = parse(
            "select a.x from a where a.x > @low and a.y < ?"
        )
        found = sorted(
            node.name
            for predicate in statement.where
            for expr in (predicate.left, predicate.right)
            for node in expr.walk()
            if isinstance(node, Parameter)
        )
        assert found == ["0", "low"]

    def test_in_lists_stay_literal_only(self):
        # The grammar restricts IN (...) to literals; a marker inside is
        # a parse error, not a silent mis-bind.
        with pytest.raises(ParseError):
            parse("select a.x from a where a.x in (?, 2)")


class TestPrepareStatement:
    def test_slots_and_type_inference(self, catalog):
        sql = (
            "select d.d_year, sum(lo.lo_revenue) "
            "from lineorder as lo, ddate as d "
            "where lo.lo_orderdate = d.d_datekey and d.d_year >= ? "
            "and d.d_yearmonth = @month group by d.d_year"
        )
        prepared = prepare_statement(parse(sql), catalog, sql)
        assert prepared.parameter_names == ("0", "month")
        by_name = {slot.name: slot for slot in prepared.slots}
        assert by_name["0"].positional
        assert not by_name["month"].positional
        assert by_name["0"].dtype == DataType.INT64
        assert by_name["month"].dtype == DataType.STRING

    def test_between_markers_infer_column_type(self, catalog):
        sql = (
            "select lo.lo_revenue from lineorder as lo, ddate as d "
            "where lo.lo_orderdate = d.d_datekey "
            "and lo.lo_discount between ? and ?"
        )
        prepared = prepare_statement(parse(sql), catalog, sql)
        assert [slot.dtype for slot in prepared.slots] == [
            DataType.INT64, DataType.INT64,
        ]

    def test_normalized_sql_ignores_spelling(self, catalog):
        a = "select  d.d_year , count(*)  from ddate as d GROUP BY d.d_year"
        b = "SELECT d.d_year, COUNT(*) FROM ddate AS d group by d.d_year"
        norm_a = render_statement(parse(a))
        norm_b = render_statement(parse(b))
        assert norm_a == norm_b

    def test_normalized_sql_renders_markers_not_values(self, catalog):
        prepared = prepare_statement(
            parse(JOIN_AGG_TEMPLATE), catalog, JOIN_AGG_TEMPLATE
        )
        assert "@0" in prepared.normalized_sql
        assert "1993" not in prepared.normalized_sql

    def test_template_is_reusable_across_bindings(self, catalog):
        prepared = prepare_statement(
            parse(JOIN_AGG_TEMPLATE), catalog, JOIN_AGG_TEMPLATE
        )
        first, _ = prepared.bind_execution([1993])
        second, _ = prepared.bind_execution([1997])
        # Fresh bound queries; the template keeps its Parameter nodes.
        assert first is not second
        template_filters = [
            str(p) for conjuncts in prepared.bound.filters.values()
            for p in conjuncts
        ]
        assert any("@0" in text for text in template_filters)

    def test_bind_execution_validates_parameters(self, catalog):
        prepared = prepare_statement(
            parse(JOIN_AGG_TEMPLATE), catalog, JOIN_AGG_TEMPLATE
        )
        with pytest.raises(BindError, match="missing"):
            prepared.bind_execution([])
        with pytest.raises(BindError, match="unknown"):
            prepared.bind_execution({"0": 1993, "extra": 1})
        with pytest.raises(BindError, match="scalar"):
            prepared.bind_execution([[1992, 1993]])


#: (template, parameter bindings) — each binding also renders a literal
#: one-shot query for the differential comparison.  Covers filters,
#: BETWEEN ranges, residual predicates, HAVING thresholds, aggregate
#: arguments (hybrid path) and repeated markers.
PARAM_CORPUS = [
    (
        JOIN_AGG_TEMPLATE,
        [[1992], [1995], [1998]],
    ),
    (
        "select d.d_year, sum(lo.lo_extendedprice * lo.lo_discount) "
        "from lineorder as lo, ddate as d "
        "where lo.lo_orderdate = d.d_datekey "
        "and lo.lo_discount between ? and ? and lo.lo_quantity < ? "
        "group by d.d_year",
        [[1, 3, 25], [2, 6, 40]],
    ),
    (
        "select c.c_nation, sum(lo.lo_revenue) "
        "from lineorder as lo, customer as c, ddate as d "
        "where lo.lo_custkey = c.c_custkey "
        "and lo.lo_orderdate = d.d_datekey and c.c_region = @region "
        "group by c.c_nation order by c.c_nation",
        [{"region": "ASIA"}, {"region": "AMERICA"}],
    ),
    (
        "select d.d_year, count(*) from lineorder as lo, ddate as d "
        "where lo.lo_orderdate = d.d_datekey group by d.d_year "
        "having sum(lo.lo_revenue) > ? order by d.d_year",
        [[1_000_000], [40_000_000]],
    ),
    (
        # Parameter inside the aggregate argument: the pattern matcher
        # rejects non-literal factors, so this exercises the hybrid
        # (grouped-reduce) template with per-row argument evaluation.
        "select d.d_year, sum(lo.lo_revenue * ?) "
        "from lineorder as lo, ddate as d "
        "where lo.lo_orderdate = d.d_datekey group by d.d_year "
        "order by d.d_year",
        [[2], [10]],
    ),
    (
        # The same named parameter used twice (filter + HAVING).
        "select d.d_year, sum(lo.lo_supplycost) "
        "from lineorder as lo, ddate as d "
        "where lo.lo_orderdate = d.d_datekey and lo.lo_quantity > @q "
        "group by d.d_year having count(*) > @q",
        [{"q": 10}, {"q": 30}],
    ),
]


def _inline(template: str, params) -> str:
    """Render the literal one-shot spelling of a parameter binding."""
    if isinstance(params, dict):
        sql = template
        for name, value in params.items():
            literal = repr(value) if isinstance(value, str) else str(value)
            sql = sql.replace(f"@{name}", literal)
        return sql
    sql_parts = template.split("?")
    out = [sql_parts[0]]
    for value, part in zip(params, sql_parts[1:]):
        literal = repr(value) if isinstance(value, str) else str(value)
        out.append(literal)
        out.append(part)
    return "".join(out)


class TestPreparedDifferential:
    @pytest.mark.parametrize(
        "template,bindings",
        PARAM_CORPUS,
        ids=[f"q{i}" for i in range(len(PARAM_CORPUS))],
    )
    def test_reference_prepared_matches_one_shot(
        self, reference, template, bindings
    ):
        prepared = reference.prepare(template)
        for params in bindings:
            got = reference.execute_prepared(prepared, params)
            expected = reference.execute(_inline(template, params))
            assert_results_match(
                got, expected, rel=1e-9,
                context=f"reference prepared {template!r} {params!r}",
            )

    @pytest.mark.parametrize(
        "template,bindings",
        PARAM_CORPUS,
        ids=[f"q{i}" for i in range(len(PARAM_CORPUS))],
    )
    def test_tcudb_prepared_matches_reference(
        self, reference, tcudb, template, bindings
    ):
        prepared = tcudb.prepare(template)
        for params in bindings:
            got = tcudb.execute_prepared(prepared, params)
            expected = reference.execute(_inline(template, params))
            assert_results_match(
                got, expected, rel=TCU_REL,
                context=f"tcudb prepared {template!r} {params!r}",
            )

    def test_positional_params_via_one_shot_execute(self, reference):
        got = reference.execute(JOIN_AGG_TEMPLATE, params=[1994])
        expected = reference.execute(_inline(JOIN_AGG_TEMPLATE, [1994]))
        assert_results_match(got, expected, rel=1e-9,
                             context="one-shot positional params")

"""Program cache: LRU/invalidation unit behavior, engine integration,
the prepared+cached vs one-shot differential over the fuzz corpus, and
concurrent sessions sharing one cache through the QueryServer.

Tier-1: runs in the default suite and in the REPRO_WORKERS=2 CI leg.
"""

import threading

import pytest

from differential_utils import assert_results_match
from repro.common.rng import make_rng
from repro.datasets.ssb import ssb_catalog
from repro.engine import create_engine
from repro.engine.cache import ProgramCache
from repro.engine.tcudb import TCUDBEngine, TCUDBOptions
from repro.serve import QueryServer
from test_fuzz_queries import QueryGenerator

TCU_REL = 2e-3

JOIN_AGG_SQL = (
    "select d.d_year, sum(lo.lo_revenue) from lineorder as lo, ddate as d "
    "where lo.lo_orderdate = d.d_datekey group by d.d_year order by d.d_year"
)


@pytest.fixture(scope="module")
def catalog():
    return ssb_catalog(scale_factor=1, rows_per_sf=2000, seed=13)


class TestProgramCacheUnit:
    def test_miss_then_hit(self):
        cache = ProgramCache(capacity=4)
        assert cache.get("k", "fp") is None
        cache.put("k", "fp", "value")
        assert cache.get("k", "fp") == "value"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction_order(self):
        cache = ProgramCache(capacity=2)
        cache.put("a", "fp", 1)
        cache.put("b", "fp", 2)
        assert cache.get("a", "fp") == 1  # refresh: "b" is now LRU
        cache.put("c", "fp", 3)  # evicts "b"
        assert cache.get("b", "fp") is None
        assert cache.get("a", "fp") == 1
        assert cache.get("c", "fp") == 3
        assert cache.stats()["evictions"] == 1

    def test_fingerprint_mismatch_invalidates(self):
        cache = ProgramCache()
        cache.put("k", "fp1", "stale")
        assert cache.get("k", "fp2") is None
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["entries"] == 0
        # A fresh put under the new fingerprint works normally.
        cache.put("k", "fp2", "fresh")
        assert cache.get("k", "fp2") == "fresh"

    def test_capacity_validation_and_clear(self):
        with pytest.raises(ValueError):
            ProgramCache(capacity=0)
        cache = ProgramCache(capacity=2)
        cache.put("a", "fp", 1)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestCatalogFingerprint:
    def test_register_replace_changes_fingerprint(self):
        catalog = ssb_catalog(scale_factor=1, rows_per_sf=200, seed=7)
        before = catalog.fingerprint()
        assert before == catalog.fingerprint()  # stable while untouched
        catalog.register(catalog.get("ddate"), replace=True)
        # Same Table object: same uid, same fingerprint.
        assert catalog.fingerprint() == before
        rebuilt = ssb_catalog(scale_factor=1, rows_per_sf=200, seed=7)
        catalog.register(rebuilt.get("ddate"), replace=True)
        assert catalog.fingerprint() != before


class TestEngineIntegration:
    def test_repeated_one_shot_hits_cache(self, catalog):
        cache = ProgramCache()
        engine = TCUDBEngine(catalog, program_cache=cache)
        first = engine.execute(JOIN_AGG_SQL)
        second = engine.execute(JOIN_AGG_SQL)
        assert cache.stats()["hits"] == 1
        assert_results_match(second, first, rel=0,
                             context="cached repeat of one-shot SQL")

    def test_cache_replay_survives_catalog_replace(self, catalog):
        # A replaced table changes the fingerprint: the cached program
        # is invalidated, recompiled against the new catalog, and the
        # result reflects the new data.
        small = ssb_catalog(scale_factor=1, rows_per_sf=300, seed=5)
        cache = ProgramCache()
        engine = TCUDBEngine(small, program_cache=cache)
        engine.execute(JOIN_AGG_SQL)
        bigger = ssb_catalog(scale_factor=1, rows_per_sf=600, seed=5)
        small.register(bigger.get("lineorder"), replace=True)
        engine.execute(JOIN_AGG_SQL)
        stats = cache.stats()
        assert stats["invalidations"] == 1
        expected = create_engine("reference", small).execute(JOIN_AGG_SQL)
        got = engine.execute(JOIN_AGG_SQL)
        assert_results_match(got, expected, rel=TCU_REL,
                             context="post-invalidation recompile")

    def test_incompatible_options_do_not_share_programs(self, catalog):
        cache = ProgramCache()
        fused = TCUDBEngine(catalog, program_cache=cache)
        unfused = TCUDBEngine(catalog, program_cache=cache,
                              options=TCUDBOptions(fusion=False))
        fused.execute(JOIN_AGG_SQL)
        unfused.execute(JOIN_AGG_SQL)
        # Different compile options -> different keys -> two entries.
        assert cache.stats()["entries"] == 2
        assert cache.stats()["hits"] == 0

    def test_cached_failures_skip_rematching(self, catalog):
        # Single-table scans are not TCU-lowerable; the MatchFailure is
        # cached so the repeat falls back without re-matching (a second
        # lookup counts as a hit).
        cache = ProgramCache()
        engine = TCUDBEngine(catalog, program_cache=cache)
        sql = "select d.d_year from ddate as d order by d.d_year limit 3"
        first = engine.execute(sql)
        assert first.extra["executed_by"] == "YDB-fallback"
        second = engine.execute(sql)
        assert second.extra["executed_by"] == "YDB-fallback"
        assert cache.stats()["hits"] == 1


class TestFuzzDifferential:
    def test_prepared_cached_matches_one_shot_corpus(self, catalog):
        """Zero-divergence gate: for a fuzz corpus, prepared+cached
        execution is row-identical to the uncached one-shot engine."""
        rng = make_rng(9120622)
        generator = QueryGenerator(rng)
        cache = ProgramCache()
        cached = TCUDBEngine(catalog, program_cache=cache)
        uncached = TCUDBEngine(catalog)
        failures = []
        queries = [generator.generate() for _ in range(60)]
        for index, sql in enumerate(queries):
            expected = uncached.execute(sql)
            prepared = cached.prepare(sql)
            for repeat in range(2):  # second run replays from cache
                got = cached.execute_prepared(prepared)
                try:
                    assert_results_match(
                        got, expected, rel=0,
                        context=f"fuzz #{index} repeat {repeat}: {sql}",
                    )
                except AssertionError as error:
                    failures.append(str(error))
        assert not failures, "\n".join(failures[:5])
        stats = cache.stats()
        assert stats["hits"] >= len(queries)  # every replay hit
        assert stats["entries"] > 0


class TestConcurrentSessions:
    def test_sessions_share_cache_safely(self, catalog):
        """N sessions execute the same prepared statement concurrently
        through the server: all results identical, one compilation."""
        with QueryServer(catalog, max_concurrent=4, workers=1) as server:
            sessions = [server.session() for _ in range(4)]
            prepared = sessions[0].prepare(
                "select d.d_year, sum(lo.lo_revenue) "
                "from lineorder as lo, ddate as d "
                "where lo.lo_orderdate = d.d_datekey and d.d_year >= ? "
                "group by d.d_year order by d.d_year"
            )
            results, errors = {}, []
            barrier = threading.Barrier(len(sessions))

            def run(session, year):
                try:
                    barrier.wait(timeout=10)
                    for _ in range(3):
                        results.setdefault(session.session_id, []).append(
                            session.execute(prepared, params=[year],
                                            timeout=60)
                        )
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [
                threading.Thread(target=run, args=(session, 1994))
                for session in sessions
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            baseline = None
            for session in sessions:
                for result in results[session.session_id]:
                    if baseline is None:
                        baseline = result
                    else:
                        assert_results_match(
                            result, baseline, rel=0,
                            context="concurrent cached sessions",
                        )
            stats = server.cache_stats()
            # 4 sessions x 3 runs = 12 lookups on one entry: exactly one
            # compilation, every other lookup a hit.
            assert stats["entries"] == 1
            assert stats["misses"] == 1
            assert stats["hits"] == 11

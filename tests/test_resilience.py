"""Fault-tolerant serving: injection, retry/failover, degradation.

The load-bearing test is the chaos differential fuzz sweep: the seeded
SSB query generator (shared with ``test_fuzz_queries``) emits 50+
queries, each executed on a distributed engine (2 and 4 shards) under
an injected fault plan — transient shard errors plus corrupted grid
partials — and every answer must be row-identical to the fault-free
run and the Reference oracle.  Unit classes pin the individual
contracts: fault-plan parsing/determinism, retry backoff, speculative
straggler re-execution, the circuit-breaker state machine, program
cache poisoning, graceful degradation to single-node and to the
reference fallback, server close/cancel semantics, load shedding, and
the error taxonomy (no raw non-ReproError ever escapes the server).
"""

from __future__ import annotations

import threading
import time

import pytest

from differential_utils import assert_results_match
from test_fuzz_queries import FUZZ_SEED, QueryGenerator
from test_serve import BlockingEngine
from repro.common.errors import (
    AdmissionError,
    BackendUnavailable,
    ConfigError,
    CorruptPartialError,
    ExecutionError,
    InternalError,
    PoisonedTemplateError,
    QueryCancelled,
    ReproError,
    ResilienceExhausted,
    ServerClosed,
    TransientShardError,
)
from repro.common.faults import (
    DEFAULT_FAULT_SEED,
    SITE_CACHE_GET,
    SITE_GRID_ACCUMULATE,
    SITE_SESSION_RUN,
    SITE_SHARD_EXECUTE,
    FaultPlan,
    FaultRule,
    active_plan,
    clear_fault_plan,
    corrupt_array,
    fault_point,
    inject,
    parse_fault_plan,
    set_fault_plan,
    suppress,
)
from repro.common.rng import make_rng
from repro.datasets.ssb import ssb_catalog
from repro.engine.base import ExecutionMode
from repro.engine.cache import ProgramCache
from repro.engine.parallel import (
    RetryPolicy,
    call_with_retries,
    is_retryable,
    speculative_map,
)
from repro.engine.reference import ReferenceEngine
from repro.engine.tcudb import DistributedEngine, TCUDBEngine, TCUDBOptions
from repro.serve import CircuitBreaker, QueryBudget, QueryServer, Session

TCU_REL = 2e-3
N_FUZZ_QUERIES = 50

FACT_KW = {"fact": "lineorder", "partition_key": "lo_orderkey"}

AGG_SQL = ("SELECT SUM(lo_revenue) AS r, d_year FROM lineorder, ddate "
           "WHERE lo_orderdate = d_datekey GROUP BY d_year")


@pytest.fixture(scope="module")
def catalog():
    return ssb_catalog(scale_factor=1, rows_per_sf=2000, seed=13)


@pytest.fixture(scope="module")
def oracle(catalog):
    return ReferenceEngine(catalog)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends without an installed fault plan."""
    clear_fault_plan()
    yield
    clear_fault_plan()


def dist_engine(catalog, shards, **kwargs):
    return DistributedEngine(catalog, shards=shards,
                             mode=ExecutionMode.REAL, **FACT_KW, **kwargs)


# --------------------------------------------------------------------- #
# Fault-plan units
# --------------------------------------------------------------------- #

class TestFaultPlan:
    def test_parse_seed_and_knobs(self):
        plan = parse_fault_plan(
            "seed=7; shard.execute:transient:every=3;"
            "session.run:unavailable:p=0.5,max=2;"
            "grid.accumulate:slow:delay=0.25,n=1"
        )
        assert plan.seed == 7
        every, proba, slow = plan.rules
        assert (every.site, every.kind, every.every) == (
            SITE_SHARD_EXECUTE, "transient", 3)
        assert (proba.p, proba.max_fires) == (0.5, 2)
        assert (slow.delay, slow.n) == (0.25, 1)

    @pytest.mark.parametrize("spec", [
        "shard.execute",                       # no kind
        "nowhere:transient",                   # unknown site
        "shard.execute:explode",               # unknown kind
        "shard.execute:transient:p=2.0",       # probability out of range
        "shard.execute:transient:every=0",     # bad period
        "shard.execute:transient:bogus=1",     # unknown knob
        "shard.execute:transient:every=x",     # non-numeric value
        "seed=abc",                            # bad seed
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            parse_fault_plan(spec)

    def test_every_rule_never_fires_twice_in_a_row(self):
        rule = FaultRule(site=SITE_SHARD_EXECUTE, kind="transient", every=3)
        plan = FaultPlan([rule])
        fired = [bool(plan.fired_rules(SITE_SHARD_EXECUTE))
                 for _ in range(12)]
        assert fired == [False, False, True] * 4
        assert not any(a and b for a, b in zip(fired, fired[1:]))

    def test_n_and_max_fires(self):
        plan = FaultPlan([FaultRule(site=SITE_CACHE_GET, kind="poison",
                                    n=2)])
        fired = [bool(plan.fired_rules(SITE_CACHE_GET)) for _ in range(4)]
        assert fired == [True, True, False, False]
        capped = FaultPlan([FaultRule(site=SITE_CACHE_GET, kind="poison",
                                      max_fires=1)])
        fired = [bool(capped.fired_rules(SITE_CACHE_GET)) for _ in range(3)]
        assert fired == [True, False, False]

    def test_probability_rules_are_seed_deterministic(self):
        def pattern(seed):
            plan = FaultPlan([FaultRule(site=SITE_SHARD_EXECUTE,
                                        kind="transient", p=0.5)],
                             seed=seed)
            return [bool(plan.fired_rules(SITE_SHARD_EXECUTE))
                    for _ in range(64)]

        assert pattern(11) == pattern(11)
        assert pattern(11) != pattern(12)
        assert any(pattern(11)) and not all(pattern(11))

    def test_reset_restores_the_exact_sequence(self):
        plan = FaultPlan([FaultRule(site=SITE_SHARD_EXECUTE,
                                    kind="transient", p=0.4)], seed=3)
        first = [bool(plan.fired_rules(SITE_SHARD_EXECUTE))
                 for _ in range(32)]
        plan.reset()
        again = [bool(plan.fired_rules(SITE_SHARD_EXECUTE))
                 for _ in range(32)]
        assert first == again

    def test_fault_point_raises_typed_errors(self):
        plan = FaultPlan([
            FaultRule(site=SITE_SHARD_EXECUTE, kind="transient", n=1),
            FaultRule(site=SITE_SESSION_RUN, kind="unavailable", n=1),
            FaultRule(site=SITE_CACHE_GET, kind="poison", n=1),
        ])
        with inject(plan):
            with pytest.raises(TransientShardError) as info:
                fault_point(SITE_SHARD_EXECUTE, shard=3)
            assert info.value.retryable and "shard 3" in str(info.value)
            with pytest.raises(BackendUnavailable):
                fault_point(SITE_SESSION_RUN)
            with pytest.raises(PoisonedTemplateError):
                fault_point(SITE_CACHE_GET)
            fault_point(SITE_GRID_ACCUMULATE)  # no rule -> no-op
        with pytest.raises(ConfigError):
            fault_point("not.a.site")

    def test_corrupt_array_perturbs_a_copy(self):
        import numpy as np

        plan = FaultPlan([FaultRule(site=SITE_GRID_ACCUMULATE,
                                    kind="corrupt", n=1)])
        honest = np.ones((2, 2))
        with inject(plan):
            shipped = corrupt_array(SITE_GRID_ACCUMULATE, honest)
            assert shipped[0, 0] != honest[0, 0]  # perturbed copy
            assert honest[0, 0] == 1.0            # original untouched
            second = corrupt_array(SITE_GRID_ACCUMULATE, honest)
            assert second is honest               # n=1 exhausted

    def test_suppress_is_thread_local(self):
        plan = FaultPlan([FaultRule(site=SITE_SHARD_EXECUTE,
                                    kind="transient")])
        sibling_faulted = threading.Event()

        def sibling():
            try:
                fault_point(SITE_SHARD_EXECUTE)
            except TransientShardError:
                sibling_faulted.set()

        with inject(plan):
            with suppress():
                fault_point(SITE_SHARD_EXECUTE)  # suppressed here...
                worker = threading.Thread(target=sibling)
                worker.start()
                worker.join()
            assert sibling_faulted.is_set()      # ...but not over there

    def test_env_plan_applies_and_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "seed=5;shard.execute:transient:every=2")
        plan = active_plan()
        assert plan is not None and plan.seed == 5
        assert active_plan() is plan  # cached shared instance
        with inject(None):            # explicit None disables env plan
            assert active_plan() is None
        override = FaultPlan([])
        set_fault_plan(override)
        assert active_plan() is override
        clear_fault_plan()
        assert active_plan() is plan

    def test_stats_ledger(self):
        plan = FaultPlan([FaultRule(site=SITE_SHARD_EXECUTE,
                                    kind="transient", every=2)])
        for _ in range(4):
            plan.fired_rules(SITE_SHARD_EXECUTE)
        stats = plan.stats()
        assert stats["seed"] == DEFAULT_FAULT_SEED
        assert stats["rules"] == [{"site": SITE_SHARD_EXECUTE,
                                   "kind": "transient",
                                   "calls": 4, "fires": 2}]


# --------------------------------------------------------------------- #
# Retry / speculation primitives
# --------------------------------------------------------------------- #

class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy()
        delays = [policy.backoff_for(attempt, key=7)
                  for attempt in range(1, 6)]
        assert delays == [policy.backoff_for(a, key=7)
                          for a in range(1, 6)]
        cap = policy.max_backoff_s * (1.0 + policy.jitter)
        assert all(0.0 < d <= cap for d in delays)
        # Jitter decorrelates shards: same attempt, different key.
        assert policy.backoff_for(1, key=1) != policy.backoff_for(1, key=2)

    def test_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientShardError("flap")
            return "ok"

        log: list[dict] = []
        policy = RetryPolicy(max_attempts=3, base_backoff_s=0.0)
        assert call_with_retries(flaky, policy, attempts_log=log) == "ok"
        assert calls["n"] == 3
        assert [entry["error"] for entry in log] == [
            "TransientShardError", "TransientShardError"]

    def test_exhaustion_and_non_retryable(self):
        policy = RetryPolicy(max_attempts=2, base_backoff_s=0.0)
        with pytest.raises(TransientShardError):
            call_with_retries(
                lambda: (_ for _ in ()).throw(TransientShardError("x")),
                policy)
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise ExecutionError("not retryable")

        with pytest.raises(ExecutionError):
            call_with_retries(fatal, policy)
        assert calls["n"] == 1  # no second attempt

    def test_is_retryable_taxonomy(self):
        assert is_retryable(TransientShardError("x"))
        assert is_retryable(BackendUnavailable("x"))
        assert is_retryable(CorruptPartialError("x"))
        assert not is_retryable(ExecutionError("x"))
        assert not is_retryable(QueryCancelled("x"))
        assert not is_retryable(ValueError("x"))


class TestSpeculativeMap:
    def test_straggler_is_speculatively_reexecuted(self):
        slow_once = threading.Event()
        speculated: list[int] = []

        def work(item):
            if item == 0 and not slow_once.is_set():
                slow_once.set()
                time.sleep(0.4)
            return item * 10

        results = list(speculative_map(
            work, range(3), workers=3,
            straggler_timeout_s=0.05,
            on_speculate=speculated.append,
        ))
        assert results == [0, 10, 20]
        assert speculated == [0]

    def test_no_timeout_means_no_speculation(self):
        speculated: list[int] = []
        results = list(speculative_map(
            lambda item: item, range(4), workers=2,
            on_speculate=speculated.append,
        ))
        assert results == [0, 1, 2, 3]
        assert speculated == []


# --------------------------------------------------------------------- #
# Circuit breaker state machine
# --------------------------------------------------------------------- #

class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers_via_half_open(self):
        breaker = CircuitBreaker("tcudb", threshold=2, cooldown_s=0.05)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.snapshot()["state"] == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.snapshot()["state"] == CircuitBreaker.OPEN
        assert not breaker.allow()  # cooling down
        time.sleep(0.06)
        assert breaker.allow()      # the half-open probe
        assert breaker.snapshot()["state"] == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # exactly one probe in flight
        breaker.record_success()
        assert breaker.snapshot()["state"] == CircuitBreaker.CLOSED
        assert breaker.snapshot()["opens"] == 1

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker("tcudb", threshold=1, cooldown_s=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()    # probe fails
        assert breaker.snapshot()["state"] == CircuitBreaker.OPEN
        assert breaker.snapshot()["opens"] == 2

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker("tcudb", threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.snapshot()["state"] == CircuitBreaker.CLOSED

    def test_threshold_validated(self):
        with pytest.raises(ExecutionError):
            CircuitBreaker("tcudb", threshold=0)


# --------------------------------------------------------------------- #
# Program-cache poisoning
# --------------------------------------------------------------------- #

class TestCachePoison:
    def test_poisoned_hit_is_evicted_and_recompiled(self, catalog, oracle):
        engine = TCUDBEngine(catalog, mode=ExecutionMode.REAL,
                             program_cache=ProgramCache())
        baseline = engine.execute(AGG_SQL)  # populate the cache
        plan = FaultPlan([FaultRule(site=SITE_CACHE_GET, kind="poison",
                                    n=1)])
        with inject(plan):
            healed = engine.execute(AGG_SQL)
        assert_results_match(healed, baseline, rel=TCU_REL)
        assert_results_match(healed, oracle.execute(AGG_SQL), rel=TCU_REL)
        stats = engine.program_cache.stats()
        assert stats["poisoned"] == 1

    def test_poison_counts_in_stats_even_for_misses(self, catalog):
        engine = TCUDBEngine(catalog, mode=ExecutionMode.REAL,
                             program_cache=ProgramCache())
        assert engine.program_cache.poison("nonexistent-key") is False
        assert engine.program_cache.stats()["poisoned"] == 1


# --------------------------------------------------------------------- #
# Distributed recovery: the chaos differential fuzz sweep
# --------------------------------------------------------------------- #

class TestShardRecovery:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_chaos_fuzz_matches_fault_free_and_oracle(self, catalog,
                                                      oracle, shards):
        generator = QueryGenerator(make_rng(FUZZ_SEED))
        queries = [generator.generate() for _ in range(N_FUZZ_QUERIES)]
        faulty = dist_engine(catalog, shards)
        clean = dist_engine(catalog, shards)
        plan = FaultPlan([
            FaultRule(site=SITE_SHARD_EXECUTE, kind="transient", p=0.3),
            FaultRule(site=SITE_GRID_ACCUMULATE, kind="corrupt", p=0.15),
        ], seed=FUZZ_SEED)
        for index, sql in enumerate(queries):
            expected = clean.execute(sql)
            with inject(plan):
                got = faulty.execute(sql)
            context = f"[chaos shards={shards} query {index}] {sql}"
            assert_results_match(got, expected, rel=TCU_REL,
                                 context=context)
            assert_results_match(got, oracle.execute(sql), rel=TCU_REL,
                                 context=context)
        stats = plan.stats()
        fires = {r["site"]: r["fires"] for r in stats["rules"]}
        assert fires[SITE_SHARD_EXECUTE] > 0, \
            "the sweep must actually have injected shard faults"

    def test_retries_recorded_in_resilience_extra(self, catalog):
        engine = dist_engine(catalog, 2)
        plan = FaultPlan([FaultRule(site=SITE_SHARD_EXECUTE,
                                    kind="transient", n=1)])
        with inject(plan):
            result = engine.execute(AGG_SQL)
        resilience = result.extra["resilience"]
        assert resilience["route"] in ("grid-allreduce", "partial-rows")
        assert resilience["attempts"] >= 2
        [(shard, log)] = list(resilience["retries"].items())
        assert log[0]["error"] == "TransientShardError"
        assert resilience["retry_policy"]["max_attempts"] >= 2

    def test_corrupt_partial_detected_and_reexecuted(self, catalog,
                                                     oracle):
        engine = dist_engine(catalog, 2)
        plan = FaultPlan([FaultRule(site=SITE_GRID_ACCUMULATE,
                                    kind="corrupt", n=1)])
        with inject(plan):
            result = engine.execute(AGG_SQL)
        assert_results_match(result, oracle.execute(AGG_SQL), rel=TCU_REL)
        resilience = result.extra.get("resilience")
        if resilience is not None and resilience.get("retries"):
            errors = [entry["error"]
                      for log in resilience["retries"].values()
                      for entry in log]
            assert "CorruptPartialError" in errors

    def test_per_shard_recovery_after_retry_exhaustion(self, catalog,
                                                       oracle):
        engine = dist_engine(
            catalog, 2,
            retry_policy=RetryPolicy(max_attempts=2, base_backoff_s=0.0))
        # n=2 out-fires the 2-attempt budget on the first shard call, so
        # the suppressed per-shard recovery rung must kick in.
        plan = FaultPlan([FaultRule(site=SITE_SHARD_EXECUTE,
                                    kind="transient", n=2)])
        with inject(plan):
            result = engine.execute(AGG_SQL)
        assert_results_match(result, oracle.execute(AGG_SQL), rel=TCU_REL)
        recovered = result.extra["resilience"]["recovered"]
        assert recovered and recovered[0]["error"] == "TransientShardError"

    def test_straggler_speculation(self, catalog, oracle):
        engine = dist_engine(catalog, 2, straggler_timeout_s=0.05)
        plan = FaultPlan([FaultRule(site=SITE_SHARD_EXECUTE, kind="slow",
                                    delay=0.5, n=1)])
        with inject(plan):
            result = engine.execute(AGG_SQL)
        assert_results_match(result, oracle.execute(AGG_SQL), rel=TCU_REL)
        assert result.extra["resilience"]["speculated"]

    def test_whole_query_degrades_to_single_node(self, catalog, oracle,
                                                 monkeypatch):
        engine = dist_engine(catalog, 2)

        def always_down(self, bound):
            raise BackendUnavailable("fan-out path is down")

        monkeypatch.setattr(DistributedEngine, "_execute_aggregate",
                            always_down)
        result = engine.execute(AGG_SQL)
        assert_results_match(result, oracle.execute(AGG_SQL), rel=TCU_REL)
        resilience = result.extra["resilience"]
        assert resilience["route"] == "single-node"
        assert resilience["degraded_from"] == "aggregate"
        assert "BackendUnavailable" in resilience["cause"]

    def test_resilience_exhausted_when_nothing_works(self, catalog,
                                                     monkeypatch):
        engine = dist_engine(catalog, 2)

        def always_down(self, bound):
            raise BackendUnavailable("fan-out path is down")

        monkeypatch.setattr(DistributedEngine, "_execute_aggregate",
                            always_down)
        monkeypatch.setattr(
            DistributedEngine, "_single_node",
            lambda self, bound, reason: (_ for _ in ()).throw(
                ExecutionError("single-node is down too")))
        with pytest.raises(ResilienceExhausted) as info:
            engine.execute(AGG_SQL)
        assert info.value.degraded

    def test_fault_free_queries_carry_no_resilience_extra(self, catalog):
        engine = dist_engine(catalog, 2)
        with inject(None):  # even under an ambient REPRO_FAULTS plan
            result = engine.execute(AGG_SQL)
        assert "resilience" not in result.extra


# --------------------------------------------------------------------- #
# Server hardening
# --------------------------------------------------------------------- #

class FlakyEngine:
    """Test double: fails the first *n* executions, then delegates."""

    def __init__(self, delegate, failures, error=TransientShardError):
        self.delegate = delegate
        self.remaining = failures
        self.error = error
        self.cancel_token = None

    def execute(self, sql, params=None):
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error("injected primary failure")
        return self.delegate.execute(sql, params=params)


class TestServerResilience:
    def test_retry_budget_recovers_transients(self, catalog, monkeypatch):
        flaky = FlakyEngine(ReferenceEngine(catalog), failures=2)
        with QueryServer(catalog, engine="reference") as server:
            monkeypatch.setattr(Session, "_engine", lambda self: flaky)
            session = server.session()
            result = session.execute(
                AGG_SQL, budget=QueryBudget(max_retries=2), timeout=60)
            assert result.n_rows > 0
            resilience = result.extra["resilience"]
            assert resilience["route"] == "primary"
            assert len(resilience["retries"]) == 2
            assert server.stats["retried"] == 1
            assert server.stats["completed"] == 1

    def test_exhausted_budget_falls_back_to_reference(self, catalog,
                                                      oracle,
                                                      monkeypatch):
        flaky = FlakyEngine(ReferenceEngine(catalog), failures=100)
        with QueryServer(catalog, engine="reference") as server:
            monkeypatch.setattr(Session, "_engine", lambda self: flaky)
            session = server.session()
            result = session.execute(
                AGG_SQL, budget=QueryBudget(max_retries=1), timeout=60)
            assert_results_match(result, oracle.execute(AGG_SQL),
                                 rel=TCU_REL)
            resilience = result.extra["resilience"]
            assert resilience["route"] == "reference-fallback"
            assert "TransientShardError" in resilience["cause"]
            assert server.stats["degraded"] == 1

    def test_injected_session_faults_are_absorbed(self, catalog):
        plan = FaultPlan([FaultRule(site=SITE_SESSION_RUN,
                                    kind="unavailable", every=2)])
        with QueryServer(catalog, engine="reference") as server:
            session = server.session()
            with inject(plan):
                for _ in range(4):
                    result = session.execute(AGG_SQL, timeout=60)
                    assert result.n_rows > 0
            assert server.stats["failed"] == 0
        assert plan.stats()["rules"][0]["fires"] > 0

    def test_no_raw_error_escapes_the_server(self, catalog, monkeypatch):
        class Broken:
            cancel_token = None

            def execute(self, sql, params=None):
                raise ValueError("engine bug")

        with QueryServer(catalog, engine="reference") as server:
            monkeypatch.setattr(Session, "_engine", lambda self: Broken())
            monkeypatch.setattr(
                Session, "_fallback_engine",
                lambda self: (_ for _ in ()).throw(
                    RuntimeError("fallback bug")))
            session = server.session()
            with pytest.raises(ReproError) as info:
                session.execute("SELECT d_year FROM ddate", timeout=60)
            assert isinstance(info.value, InternalError)
            # The cause chain keeps the raw bug (here: the fallback's),
            # but what *escapes* is always a typed library error.
            assert isinstance(info.value.__cause__,
                              (ValueError, RuntimeError))
            assert server.stats["internal_errors"] >= 1

    def test_breaker_opens_then_serves_via_fallback(self, catalog,
                                                    monkeypatch):
        flaky = FlakyEngine(ReferenceEngine(catalog), failures=100)
        server = QueryServer(catalog, engine="reference",
                             breaker_threshold=1, breaker_cooldown_s=60.0)
        monkeypatch.setattr(Session, "_engine", lambda self: flaky)
        try:
            session = server.session()
            first = session.execute(AGG_SQL,
                                    budget=QueryBudget(max_retries=0),
                                    timeout=60)
            assert first.extra["resilience"]["route"] == \
                "reference-fallback"
            assert server.breaker.snapshot()["state"] == \
                CircuitBreaker.OPEN
            assert server.health()["status"] == "degraded"
            # While open, the primary is not even attempted.
            before = flaky.remaining
            second = session.execute(AGG_SQL, timeout=60)
            assert flaky.remaining == before
            resilience = second.extra["resilience"]
            assert resilience["cause"] == "circuit breaker open"
            assert resilience["route"] == "reference-fallback"
        finally:
            server.close()

    def test_breaker_closes_after_successful_probe(self, catalog,
                                                   monkeypatch):
        flaky = FlakyEngine(ReferenceEngine(catalog), failures=1)
        server = QueryServer(catalog, engine="reference",
                             breaker_threshold=1,
                             breaker_cooldown_s=0.05)
        monkeypatch.setattr(Session, "_engine", lambda self: flaky)
        try:
            session = server.session()
            session.execute(AGG_SQL, budget=QueryBudget(max_retries=0),
                            timeout=60)
            assert server.breaker.snapshot()["state"] == \
                CircuitBreaker.OPEN
            time.sleep(0.06)
            probe = session.execute(AGG_SQL, timeout=60)
            # A clean primary run carries no resilience extra at all.
            assert "resilience" not in probe.extra
            assert server.breaker.snapshot()["state"] == \
                CircuitBreaker.CLOSED
            assert server.health()["status"] == "ok"
        finally:
            server.close()

    def test_close_resolves_queued_tickets(self, catalog, monkeypatch):
        engine = BlockingEngine()
        server = QueryServer(catalog, engine="reference",
                             max_concurrent=1, max_queued=2)
        monkeypatch.setattr(Session, "_engine", lambda self: engine)
        session = server.session()
        running = session.submit("SELECT 1")
        assert engine.started.wait(5)
        queued = session.submit("SELECT 2")
        # Unblock the running query shortly after close() starts so the
        # worker join can finish; the queue is drained under the lock
        # before that, so the queued ticket is already resolved.
        threading.Timer(0.1, engine.release.set).start()
        server.close()
        with pytest.raises(QueryCancelled, match="closed") as info:
            queued.result(timeout=10)
        assert isinstance(info.value, ServerClosed)
        assert server.stats["cancelled"] >= 1
        running.result(timeout=10)  # the in-flight query still completed

    def test_admission_timeout_sheds_load(self, catalog, monkeypatch):
        engine = BlockingEngine()
        server = QueryServer(catalog, engine="reference",
                             max_concurrent=1, max_queued=1,
                             admission_timeout_s=0.05)
        monkeypatch.setattr(Session, "_engine", lambda self: engine)
        try:
            session = server.session()
            running = session.submit("SELECT 1")
            assert engine.started.wait(5)
            queued = session.submit("SELECT 2")
            with pytest.raises(AdmissionError, match="shed"):
                session.submit("SELECT 3")
            assert server.stats["shed"] == 1
            engine.release.set()
            running.result(timeout=10)
            queued.result(timeout=10)
        finally:
            engine.release.set()
            server.close()

    def test_health_and_resilience_stats_surfaces(self, catalog):
        with QueryServer(catalog, engine="reference") as server, \
                inject(None):  # even under an ambient REPRO_FAULTS plan
            health = server.health()
            assert health["status"] == "ok"
            assert health["breaker"]["state"] == CircuitBreaker.CLOSED
            session = server.session()
            session.execute("SELECT d_year FROM ddate", timeout=60)
            stats = server.resilience_stats()
            assert stats["queries"]["completed"] == 1
            assert stats["retry_policy"]["max_retries_default"] >= 0
            assert stats["fault_plan"] is None
            plan = FaultPlan([FaultRule(site=SITE_SESSION_RUN,
                                        kind="unavailable", every=3)])
            with inject(plan):
                assert server.resilience_stats()["fault_plan"]["seed"] \
                    == DEFAULT_FAULT_SEED
        assert server.health()["status"] == "closed"

    def test_served_chaos_matches_oracle(self, catalog, oracle):
        """End-to-end: sharded serving under a mixed fault plan still
        returns oracle-exact rows for every query."""
        plan = FaultPlan([
            FaultRule(site=SITE_SHARD_EXECUTE, kind="transient",
                      every=3),
            FaultRule(site=SITE_SESSION_RUN, kind="unavailable",
                      every=5),
        ], seed=FUZZ_SEED)
        with QueryServer(catalog, engine="tcudb", shards=2,
                         max_concurrent=2,
                         engine_kwargs=dict(FACT_KW)) as server:
            session = server.session()
            with inject(plan):
                for _ in range(6):
                    result = session.execute(AGG_SQL, timeout=120)
                    assert_results_match(result, oracle.execute(AGG_SQL),
                                         rel=TCU_REL)
            assert server.stats["failed"] == 0

"""The concurrent query server: sessions, admission control, budgets."""

from __future__ import annotations

import threading

import pytest

from repro.common.errors import AdmissionError, ExecutionError, QueryCancelled
from repro.datasets.ssb import ssb_catalog
from repro.engine.reference import ReferenceEngine
from repro.serve import QueryBudget, QueryServer, Session, TicketState
from repro.workloads import SSB_QUERIES


@pytest.fixture(scope="module")
def catalog():
    return ssb_catalog(scale_factor=1, rows_per_sf=3000, seed=29)


class BlockingEngine:
    """Test double: holds every query until ``release`` fires."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.cancel_token = None

    def execute(self, sql):
        self.started.set()
        while not self.release.wait(0.01):
            if self.cancel_token is not None:
                self.cancel_token.raise_if_cancelled()
        from repro.engine.base import QueryResult
        from repro.common.timing import TimingBreakdown

        return QueryResult(engine="blocking", n_rows=0,
                           breakdown=TimingBreakdown())


class TestSessions:
    def test_concurrent_sessions_share_catalog(self, catalog):
        with QueryServer(catalog, engine="tcudb", max_concurrent=2,
                         workers=2) as server:
            oracle = ReferenceEngine(catalog)
            sessions = [server.session() for _ in range(3)]
            tickets = [
                session.submit(SSB_QUERIES[qid])
                for session, qid in zip(sessions, ["Q1.1", "Q2.1", "Q3.1"])
            ]
            for (session, qid), ticket in zip(
                zip(sessions, ["Q1.1", "Q2.1", "Q3.1"]), tickets
            ):
                result = ticket.result(timeout=120)
                assert ticket.state is TicketState.DONE
                assert result.extra["session"] == session.session_id
                expected = oracle.execute(SSB_QUERIES[qid])
                got = sorted(map(tuple, result.require_table().rows()))
                want = sorted(map(tuple, expected.require_table().rows()))
                assert len(got) == len(want)
            assert server.stats["completed"] == 3
            assert server.drain(timeout=5)

    def test_reference_engine_server(self, catalog):
        with QueryServer(catalog, engine="reference", max_concurrent=2,
                         workers=2,
                         engine_kwargs={"streaming": True,
                                        "chunk_rows": 512}) as server:
            session = server.session()
            result = session.execute(SSB_QUERIES["Q1.2"], timeout=60)
            assert result.extra["workers"] == 2

    def test_closed_server_rejects(self, catalog):
        server = QueryServer(catalog, engine="reference")
        session = server.session()
        server.close()
        with pytest.raises(ExecutionError, match="closed"):
            session.submit("SELECT d_year FROM ddate")


class TestAdmissionControl:
    def test_queue_overflow_rejected(self, catalog, monkeypatch):
        engine = BlockingEngine()
        server = QueryServer(catalog, engine="reference", max_concurrent=1,
                             max_queued=1)
        monkeypatch.setattr(Session, "_engine",
                            lambda self: engine)
        try:
            session = server.session()
            running = session.submit("SELECT 1")  # occupies the one worker
            assert engine.started.wait(5)
            queued = session.submit("SELECT 2")  # fills the queue
            with pytest.raises(AdmissionError, match="admission queue full"):
                session.submit("SELECT 3")  # over capacity -> fail fast
            assert server.stats["rejected"] == 1
            engine.release.set()
            running.result(timeout=10)
            queued.result(timeout=10)
            assert server.stats["completed"] == 2
        finally:
            engine.release.set()
            server.close()

    def test_queued_query_can_be_cancelled(self, catalog, monkeypatch):
        engine = BlockingEngine()
        server = QueryServer(catalog, engine="reference", max_concurrent=1,
                             max_queued=2)
        monkeypatch.setattr(Session, "_engine", lambda self: engine)
        try:
            session = server.session()
            running = session.submit("SELECT 1")
            assert engine.started.wait(5)
            queued = session.submit("SELECT 2")
            queued.cancel("abandoned")
            engine.release.set()
            running.result(timeout=10)
            with pytest.raises(QueryCancelled, match="abandoned"):
                queued.result(timeout=10)
            assert queued.state is TicketState.CANCELLED
            assert server.stats["cancelled"] == 1
        finally:
            engine.release.set()
            server.close()

    def test_running_query_cancelled_cooperatively(self, catalog,
                                                   monkeypatch):
        engine = BlockingEngine()
        server = QueryServer(catalog, engine="reference", max_concurrent=1)
        monkeypatch.setattr(Session, "_engine", lambda self: engine)
        try:
            session = server.session()
            ticket = session.submit("SELECT 1")
            assert engine.started.wait(5)
            ticket.cancel("client gone")  # mid-execution
            with pytest.raises(QueryCancelled, match="client gone"):
                ticket.result(timeout=10)
        finally:
            engine.release.set()
            server.close()


class TestBudgets:
    def test_time_budget_cancels(self, catalog):
        with QueryServer(catalog, engine="reference", max_concurrent=1,
                         engine_kwargs={"streaming": True,
                                        "chunk_rows": 64}) as server:
            session = server.session()
            with pytest.raises(QueryCancelled, match="time budget"):
                session.execute(SSB_QUERIES["Q3.1"],
                                budget=QueryBudget(max_seconds=0.0),
                                timeout=30)
            assert server.stats["cancelled"] == 1

    def test_row_budget_enforced(self, catalog):
        with QueryServer(catalog, engine="reference") as server:
            session = server.session()
            with pytest.raises(ExecutionError, match="row budget"):
                session.execute("SELECT lo_orderkey FROM lineorder",
                                budget=QueryBudget(max_rows=10), timeout=60)
            small = session.execute(
                "SELECT COUNT(*) AS c FROM lineorder",
                budget=QueryBudget(max_rows=10), timeout=60,
            )
            assert small.n_rows == 1

    def test_default_budget_applies(self, catalog):
        budget = QueryBudget(max_rows=1)
        with QueryServer(catalog, engine="reference",
                         default_budget=budget) as server:
            session = server.session()
            with pytest.raises(ExecutionError, match="row budget"):
                session.execute("SELECT d_datekey FROM ddate", timeout=60)


def test_result_timeout(catalog, monkeypatch):
    engine = BlockingEngine()
    server = QueryServer(catalog, engine="reference", max_concurrent=1)
    monkeypatch.setattr(Session, "_engine", lambda self: engine)
    try:
        ticket = server.session().submit("SELECT 1")
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.05)
    finally:
        engine.release.set()
        server.close()

"""SQL front end: lexer, parser, binder, planner, evaluation."""

import numpy as np
import pytest

from repro.common.errors import BindError, LexError, ParseError, PlanError
from repro.sql import (
    Aggregate,
    Between,
    BinaryOp,
    Comparison,
    Environment,
    InList,
    Join,
    Limit,
    Literal,
    Project,
    Scan,
    Sort,
    TokenType,
    bind,
    conjunction_mask,
    evaluate_expr,
    parse,
    plan,
    tokenize,
)


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a.b, 1.5 FROM t WHERE x >= 'hi';")
        kinds = [t.type for t in tokens]
        assert kinds[-1] == TokenType.END
        values = [t.value for t in tokens[:-1]]
        assert "select" in values and "1.5" in values and "hi" in values

    def test_comments_skipped(self):
        tokens = tokenize("-- a comment\nSELECT x FROM t")
        assert tokens[0].is_keyword("select")

    def test_doubled_quotes(self):
        tokens = tokenize("SELECT 'it''s' FROM t")
        assert any(t.value == "it's" for t in tokens)

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("SELECT 'oops FROM t")

    def test_two_char_operators(self):
        tokens = tokenize("a <= b <> c != d >= e")
        ops = [t.value for t in tokens if t.type == TokenType.OPERATOR]
        assert ops == ["<=", "<>", "!=", ">="]

    def test_scientific_number(self):
        tokens = tokenize("SELECT 1.5e3 FROM t")
        assert any(t.value == "1.5e3" for t in tokens)


class TestParser:
    def test_q1_shape(self):
        stmt = parse("SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID;")
        assert len(stmt.select_items) == 2
        assert len(stmt.tables) == 2
        assert isinstance(stmt.where[0], Comparison)

    def test_aggregates_and_groupby(self):
        stmt = parse(
            "SELECT SUM(a.v * b.v) AS s, COUNT(*), AVG(a.v) "
            "FROM a, b WHERE a.id = b.id GROUP BY b.v"
        )
        aggs = stmt.aggregates()
        assert [a.func for a in aggs] == ["sum", "count", "avg"]
        assert aggs[1].argument is None
        assert len(stmt.group_by) == 1

    def test_between_and_in(self):
        stmt = parse(
            "SELECT x FROM t WHERE x BETWEEN 1 AND 3 AND y IN ('a', 'b')"
        )
        assert isinstance(stmt.where[0], Between)
        assert isinstance(stmt.where[1], InList)
        assert [v.value for v in stmt.where[1].values] == ["a", "b"]

    def test_order_by_and_limit(self):
        stmt = parse("SELECT x FROM t ORDER BY x DESC, y LIMIT 7")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit == 7

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT a + b * c FROM t")
        expr = stmt.select_items[0].expr
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_unary_minus(self):
        stmt = parse("SELECT -x FROM t")
        expr = stmt.select_items[0].expr
        assert isinstance(expr, BinaryOp) and expr.op == "-"
        assert expr.left == Literal(0)

    def test_parameters(self):
        stmt = parse("SELECT (1 - @alpha) / @n FROM t")
        text = str(stmt.select_items[0].expr)
        assert "@alpha" in text and "@n" in text

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.select_star

    def test_table_aliases(self):
        stmt = parse("SELECT x FROM long_name AS ln, other o")
        assert stmt.tables[0].binding_name == "ln"
        assert stmt.tables[1].binding_name == "o"

    def test_errors(self):
        with pytest.raises(ParseError):
            parse("SELECT FROM t")
        with pytest.raises(ParseError):
            parse("SELECT x FROM t WHERE")
        with pytest.raises(ParseError):
            parse("SELECT SUM(*) FROM t")  # only COUNT(*) is legal
        with pytest.raises(ParseError):
            parse("SELECT x FROM t garbage trailing ,")


class TestBinder:
    def test_resolution_and_joins(self, small_catalog):
        bound = bind(parse(
            "SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID"
        ), small_catalog)
        assert len(bound.join_predicates) == 1
        predicate = bound.join_predicates[0]
        assert {predicate.left.binding, predicate.right.binding} == {"a", "b"}

    def test_unqualified_ambiguous(self, small_catalog):
        with pytest.raises(BindError):
            bind(parse("SELECT id FROM a, b WHERE a.id = b.id"),
                 small_catalog)

    def test_unknown_column(self, small_catalog):
        with pytest.raises(BindError):
            bind(parse("SELECT a.nope FROM a, b WHERE a.id = b.id"),
                 small_catalog)

    def test_filters_classified_per_table(self, small_catalog):
        bound = bind(parse(
            "SELECT a.val FROM a, b WHERE a.id = b.id AND a.val > 5 "
            "AND b.val = 'x'"
        ), small_catalog)
        assert len(bound.filters["a"]) == 1
        assert len(bound.filters["b"]) == 1

    def test_parameter_substitution(self, small_catalog):
        bound = bind(
            parse("SELECT a.val FROM a, b WHERE a.id = b.id AND a.val < @cut"),
            small_catalog, params={"cut": 15},
        )
        comparison = bound.filters["a"][0]
        assert comparison.right == Literal(15)

    def test_missing_parameter(self, small_catalog):
        with pytest.raises(BindError):
            bind(parse("SELECT a.val FROM a, b WHERE a.id = b.id "
                       "AND a.val < @cut"), small_catalog)

    def test_select_star_expansion(self, small_catalog):
        bound = bind(parse("SELECT * FROM a, b WHERE a.id = b.id"),
                     small_catalog)
        assert len(bound.select_items) == 4

    def test_nested_aggregates_rejected(self, small_catalog):
        with pytest.raises(BindError):
            bind(parse("SELECT SUM(SUM(a.val)) FROM a, b WHERE a.id = b.id"),
                 small_catalog)


class TestPlanner:
    def test_plan_shape(self, small_catalog):
        tree = plan(bind(parse(
            "SELECT SUM(a.val) s, b.val FROM a, b WHERE a.id = b.id "
            "GROUP BY b.val ORDER BY s LIMIT 2"
        ), small_catalog))
        assert isinstance(tree, Limit)
        assert isinstance(tree.input, Sort)
        assert isinstance(tree.input.input, Aggregate)
        join = tree.input.input.input
        assert isinstance(join, Join)
        assert isinstance(join.left, Scan) and isinstance(join.right, Scan)

    def test_cross_product_rejected(self, small_catalog):
        with pytest.raises(PlanError):
            plan(bind(parse("SELECT a.val, b.val FROM a, b"), small_catalog))

    def test_ungrouped_column_rejected(self, small_catalog):
        with pytest.raises(PlanError):
            plan(bind(parse(
                "SELECT SUM(a.val), a.id FROM a, b WHERE a.id = b.id"
            ), small_catalog))

    def test_project_for_plain_select(self, small_catalog):
        tree = plan(bind(parse(
            "SELECT a.val FROM a, b WHERE a.id = b.id"
        ), small_catalog))
        assert isinstance(tree, Project)


class TestEval:
    def test_expression_arithmetic(self, small_catalog):
        bound = bind(parse(
            "SELECT a.val * 2 + 1 FROM a, b WHERE a.id = b.id"
        ), small_catalog)
        env = Environment.from_table(bound, "a")
        out = evaluate_expr(bound.select_items[0].expr, env, bound)
        assert np.allclose(out, np.array([10, 20, 30, 5, 7]) * 2 + 1)

    def test_division_by_zero_yields_nan(self, small_catalog):
        bound = bind(parse(
            "SELECT a.val / 0 FROM a, b WHERE a.id = b.id"
        ), small_catalog)
        env = Environment.from_table(bound, "a")
        out = evaluate_expr(bound.select_items[0].expr, env, bound)
        assert np.all(np.isnan(out))

    def test_string_literal_comparison_uses_dictionary(self, small_catalog):
        bound = bind(parse(
            "SELECT b.id FROM a, b WHERE a.id = b.id AND b.val = 'z'"
        ), small_catalog)
        env = Environment.from_table(bound, "b")
        mask = conjunction_mask(bound.filters["b"], env, bound)
        assert list(mask) == [False, False, True, False]

    def test_in_list_on_strings(self, small_catalog):
        bound = bind(parse(
            "SELECT b.id FROM a, b WHERE a.id = b.id AND b.val IN ('x', 'w')"
        ), small_catalog)
        env = Environment.from_table(bound, "b")
        mask = conjunction_mask(bound.filters["b"], env, bound)
        assert list(mask) == [True, False, False, True]

    def test_between(self, small_catalog):
        bound = bind(parse(
            "SELECT a.id FROM a, b WHERE a.id = b.id "
            "AND a.val BETWEEN 7 AND 20"
        ), small_catalog)
        env = Environment.from_table(bound, "a")
        mask = conjunction_mask(bound.filters["a"], env, bound)
        assert list(mask) == [True, True, False, False, True]

"""Storage layer: columns, dictionaries, tables, statistics, catalog, CSV."""

import numpy as np
import pytest

from repro.common.errors import (
    SchemaError,
    StorageError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.storage import (
    Catalog,
    Column,
    DataType,
    StringDictionary,
    Table,
    compute_stats,
    join_output_estimate,
    read_csv,
    write_csv,
)


class TestDictionary:
    def test_encode_decode_roundtrip(self):
        d = StringDictionary()
        codes = d.encode(["b", "a", "b", "c"])
        assert list(codes) == [0, 1, 0, 2]
        assert list(d.decode(codes)) == ["b", "a", "b", "c"]

    def test_lookup_missing(self):
        d = StringDictionary(["x"])
        with pytest.raises(StorageError):
            d.lookup("y")
        assert d.contains("x")

    def test_merge_and_remap(self):
        d1 = StringDictionary(["a", "b"])
        d2 = StringDictionary(["b", "c"])
        merged = d1.merged_with(d2)
        remap = merged.remap_codes(d2)
        assert merged.decode_one(int(remap[0])) == "b"
        assert merged.decode_one(int(remap[1])) == "c"

    def test_code_out_of_range(self):
        d = StringDictionary(["a"])
        with pytest.raises(StorageError):
            d.decode_one(5)


class TestColumn:
    def test_type_inference(self):
        assert Column.from_values([1, 2]).dtype == DataType.INT64
        assert Column.from_values([1.5]).dtype == DataType.FLOAT64
        assert Column.from_values(["a"]).dtype == DataType.STRING

    def test_immutability(self):
        column = Column.from_values([1, 2, 3])
        with pytest.raises(ValueError):
            column.data[0] = 9

    def test_string_values_decoded(self):
        column = Column.from_values(["x", "y", "x"])
        assert list(column.values()) == ["x", "y", "x"]

    def test_take_and_filter(self):
        column = Column.from_values([10, 20, 30])
        assert list(column.take(np.array([2, 0])).data) == [30, 10]
        assert list(column.filter(np.array([True, False, True])).data) == [10, 30]

    def test_concat_strings_merges_dictionaries(self):
        a = Column.from_values(["x", "y"])
        b = Column.from_values(["y", "z"])
        merged = a.concat(b)
        assert list(merged.values()) == ["x", "y", "y", "z"]

    def test_concat_type_mismatch(self):
        with pytest.raises(SchemaError):
            Column.from_values([1]).concat(Column.from_values(["a"]))

    def test_encode_literal_string(self):
        column = Column.from_values(["x", "y"])
        assert column.encode_literal("y") == 1
        assert column.encode_literal("nope") == -1  # matches nothing


class TestTable:
    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", {
                "a": Column.from_values([1]),
                "b": Column.from_values([1, 2]),
            })

    def test_project_and_rename(self, small_catalog):
        table = small_catalog.get("a")
        projected = table.project(["val"])
        assert projected.column_names == ["val"]
        renamed = table.rename({"val": "value"})
        assert "value" in renamed.column_names

    def test_filter_take_sort(self):
        table = Table.from_dict("t", {"x": [3, 1, 2]})
        assert [r[0] for r in table.sort_by("x").rows()] == [1, 2, 3]
        assert [r[0] for r in table.sort_by("x", descending=True).rows()] == [3, 2, 1]
        assert table.filter(np.array([True, False, True])).num_rows == 2

    def test_unknown_column(self):
        table = Table.from_dict("t", {"x": [1]})
        with pytest.raises(UnknownColumnError):
            table.column("y")

    def test_with_column_length_check(self):
        table = Table.from_dict("t", {"x": [1, 2]})
        with pytest.raises(SchemaError):
            table.with_column("y", Column.from_values([1]))

    def test_pretty_renders(self):
        table = Table.from_dict("t", {"x": [1, 2], "name": ["ab", "c"]})
        text = table.pretty()
        assert "x" in text and "ab" in text

    def test_rows_decode_strings(self, small_catalog):
        rows = small_catalog.get("b").rows()
        assert rows[0] == (1, "x")


class TestStatistics:
    def test_stats_triple(self):
        column = Column.from_values([3, 1, 3, 7])
        stats = compute_stats(column)
        assert (stats.min_value, stats.max_value) == (1, 7)
        assert stats.n_distinct == 3
        assert stats.n_rows == 4

    def test_stats_cached_on_table(self):
        table = Table.from_dict("t", {"x": [1, 2, 2]})
        first = table.stats("x")
        assert table.stats("x") is first

    def test_join_output_estimate(self):
        left = compute_stats(Column.from_values([1, 1, 2, 2]))
        right = compute_stats(Column.from_values([1, 2]))
        assert join_output_estimate(left, right) == pytest.approx(4.0)

    def test_string_stats_over_codes(self):
        column = Column.from_values(["a", "b", "a"])
        stats = compute_stats(column)
        assert stats.n_distinct == 2


class TestCatalog:
    def test_register_lookup_drop(self):
        catalog = Catalog()
        catalog.register(Table.from_dict("t", {"x": [1]}))
        assert catalog.has("T")  # case-insensitive
        catalog.drop("t")
        with pytest.raises(UnknownTableError):
            catalog.get("t")

    def test_duplicate_register(self):
        catalog = Catalog()
        catalog.register(Table.from_dict("t", {"x": [1]}))
        with pytest.raises(SchemaError):
            catalog.register(Table.from_dict("t", {"x": [2]}))
        catalog.register(Table.from_dict("t", {"x": [2]}), replace=True)
        assert catalog.get("t").rows() == [(2,)]


class TestCSV:
    def test_roundtrip(self, tmp_path):
        table = Table.from_dict("t", {
            "id": [1, 2], "score": [1.5, 2.5], "name": ["a,b", "c\"d"],
        })
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back.rows() == table.rows()
        assert back.dtype("score") == DataType.FLOAT64

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(StorageError):
            read_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(StorageError):
            read_csv(path)


class TestClusterBy:
    def _shuffled(self, n=4096, seed=7):
        rng = np.random.default_rng(seed)
        keys = rng.permutation(n)
        return Table.from_dict("t", {
            "k": keys,
            "v": rng.integers(0, 100, size=n),
        })

    def test_cluster_by_sorts_and_marks(self):
        table = self._shuffled()
        clustered = table.cluster_by("k")
        assert table.sort_key is None  # base table untouched
        assert clustered.sort_key == "k"
        data = clustered.column("k").data
        assert np.all(data[1:] >= data[:-1])
        # Row multiset preserved.
        assert sorted(clustered.rows()) == sorted(table.rows())

    def test_clustered_chunk_stats_match_full_scan(self):
        from repro.storage.chunk import ChunkedTable

        clustered = self._shuffled().cluster_by("k")
        chunked = ChunkedTable(clustered, 256)
        for chunk in chunked.chunks:
            fast = chunk.stats("k")  # endpoint fast path (sort_key)
            full = compute_stats(chunk.column("k"))
            assert fast.min_value == full.min_value
            assert fast.max_value == full.max_value
            assert fast.n_distinct == full.n_distinct
            assert fast.n_rows == full.n_rows

    def test_clustered_chunk_ranges_are_disjoint(self):
        from repro.storage.chunk import ChunkedTable

        chunked = ChunkedTable(self._shuffled().cluster_by("k"), 256)
        ranges = [(c.stats("k").min_value, c.stats("k").max_value)
                  for c in chunked.chunks]
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi <= lo

    def test_clustered_scan_actually_skips_chunks(self):
        """The satellite's point: the same selective range scan prunes
        nothing on shuffled data and nearly everything once clustered."""
        from repro.engine.reference import ReferenceEngine

        table = self._shuffled()
        sql = ("SELECT SUM(t.v) AS s, COUNT(*) AS c FROM t "
               "WHERE t.k BETWEEN 1000 AND 1127")

        def run(variant):
            catalog = Catalog()
            catalog.register(variant)
            return ReferenceEngine(catalog, streaming=True,
                                   chunk_rows=256).execute(sql)

        shuffled = run(table)
        clustered = run(table.cluster_by("k"))
        assert shuffled.extra["chunks_pruned"] == 0
        assert clustered.extra["chunks_pruned"] >= 12  # 16 chunks total
        assert shuffled.require_table().rows() == \
            clustered.require_table().rows()

    def test_sharding_preserves_cluster_order(self):
        from repro.storage.shard import ShardedCatalog

        catalog = Catalog()
        catalog.register(self._shuffled().cluster_by("k"))
        sharded = ShardedCatalog.partition(
            catalog, shards=4, fact="t", policy="hash", key="k",
        )
        for s in range(4):
            part = sharded.shard(s).get("t")
            assert part.sort_key == "k"
            data = part.column("k").data
            assert np.all(data[1:] >= data[:-1])

"""TCUDB components: patterns, transforms, feasibility, optimizer, codegen."""

import numpy as np
import pytest

from repro.engine.tcudb import (
    MatchFailure,
    OperatorGeometry,
    PatternKind,
    Strategy,
    TCUOptimizer,
    comparison_matrix,
    generate_program,
    grouped_matrix,
    match_pattern,
    run_feasibility_test,
    tuple_matrix,
    union_key_domain,
)
from repro.engine.tcudb.cost import estimate_dense, estimate_sparse
from repro.engine.tcudb.feasibility import INDICATOR_RANGE
from repro.engine.tcudb.patterns import constant_value
from repro.hardware.calibration import run_calibration
from repro.hardware.profiles import I7_7700K
from repro.sql import bind, parse
from repro.tensor.precision import Precision, ValueRange


class TestPatternMatcher:
    def test_q1_matches_2way(self, small_catalog):
        bound = bind(parse("SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID"),
                     small_catalog)
        pattern = match_pattern(bound)
        assert pattern.kind == PatternKind.JOIN_2WAY

    def test_q5_nonequi_matches(self, small_catalog):
        bound = bind(parse("SELECT A.Val, B.Val FROM A, B WHERE A.ID < B.ID"),
                     small_catalog)
        pattern = match_pattern(bound)
        assert pattern.kind == PatternKind.JOIN_2WAY
        assert pattern.joins[0].op == "<"

    def test_q3_matches_join_agg(self, small_catalog):
        bound = bind(parse(
            "SELECT SUM(A.Val), B.Val FROM A, B WHERE A.ID = B.ID "
            "GROUP BY B.Val"
        ), small_catalog)
        pattern = match_pattern(bound)
        assert pattern.kind == PatternKind.JOIN_AGG
        assert pattern.aggregates[0].func == "sum"

    def test_sum_of_products_decomposes(self, small_catalog):
        bound = bind(parse(
            "SELECT SUM(2 * A.Val * A.Val) FROM A, B WHERE A.ID = B.ID"
        ), small_catalog)
        pattern = match_pattern(bound)
        spec = pattern.aggregates[0]
        assert spec.constant == 2.0
        assert len(spec.factors) == 2

    def test_sum_with_division_decomposes(self, small_catalog):
        bound = bind(parse(
            "SELECT SUM(A.Val / A.ID) FROM A, B WHERE A.ID = B.ID"
        ), small_catalog)
        pattern = match_pattern(bound)
        powers = {f.power for f in pattern.aggregates[0].factors}
        assert powers == {1, -1}

    def test_additive_sum_splits_linearly(self, small_catalog):
        bound = bind(parse(
            "SELECT SUM(A.Val - A.ID) FROM A, B WHERE A.ID = B.ID"
        ), small_catalog)
        pattern = match_pattern(bound)
        assert len(pattern.aggregates) == 2  # SUM(val) and SUM(id)

    def test_min_max_rejected(self, small_catalog):
        bound = bind(parse(
            "SELECT MAX(A.Val) FROM A, B WHERE A.ID = B.ID"
        ), small_catalog)
        failure = match_pattern(bound)
        assert isinstance(failure, MatchFailure)
        assert "MAX" in failure.reason

    def test_single_table_rejected(self, small_catalog):
        bound = bind(parse("SELECT a.val FROM a"), small_catalog)
        assert isinstance(match_pattern(bound), MatchFailure)

    def test_constant_projection_allowed(self, small_catalog):
        bound = bind(parse(
            "SELECT A.Val, (1 - 0.85) / 4 FROM A, B WHERE A.ID = B.ID"
        ), small_catalog)
        pattern = match_pattern(bound)
        assert pattern.kind == PatternKind.JOIN_2WAY
        assert pattern.projected[1] == pytest.approx(0.0375)

    def test_constant_value_folding(self):
        from repro.sql.ast_nodes import BinaryOp, Literal

        expr = BinaryOp("/", BinaryOp("-", Literal(1), Literal(0.85)),
                        Literal(4))
        assert constant_value(expr) == pytest.approx(0.0375)
        assert constant_value(BinaryOp("/", Literal(1), Literal(0))) is None


class TestTransform:
    def test_union_key_domain(self):
        left = np.array([5, 3, 5])
        right = np.array([3, 9])
        domain = union_key_domain(left, right)
        assert list(domain.values) == [3, 5, 9]
        assert list(domain.left) == [1, 0, 1]
        assert list(domain.right) == [0, 2]

    def test_tuple_matrix_encoding(self):
        # Section 3.1: mat(A)[i, j] = 1 iff a_i.ID = v_j.
        matrix = tuple_matrix(np.array([0, 2, 0]), k=3)
        dense = matrix.to_dense()
        assert dense.shape == (3, 3)
        assert dense[0, 0] == 1 and dense[1, 2] == 1 and dense[2, 0] == 1
        assert dense.sum() == 3

    def test_join_via_indicator_matmul(self, rng):
        """C = mat(A) @ mat(B).T has C[i,j] > 0 iff keys match (Sec 3.1)."""
        left = rng.integers(0, 6, 20)
        right = rng.integers(0, 6, 15)
        domain = union_key_domain(left, right)
        a = tuple_matrix(domain.left, domain.k).to_dense()
        b = tuple_matrix(domain.right, domain.k).to_dense()
        product = a @ b.T
        for i in range(20):
            for j in range(15):
                assert (product[i, j] > 0) == (left[i] == right[j])

    def test_grouped_matrix_sums_duplicates(self):
        keys = np.array([0, 0, 1])
        groups = np.array([7, 7, 7])
        values = np.array([2.0, 3.0, 4.0])
        matrix = grouped_matrix(keys, k=2, group_codes=groups, values=values)
        dense = matrix.to_dense()
        assert dense.shape == (1, 2)
        assert dense[0, 0] == 5.0 and dense[0, 1] == 4.0

    def test_grouped_matrix_collapses_without_groups(self):
        matrix = grouped_matrix(np.array([0, 1, 0]), k=2)
        assert matrix.shape == (1, 2)
        assert matrix.to_dense()[0, 0] == 2.0

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "<>"])
    def test_comparison_matrix_semantics(self, rng, op):
        import operator

        ops = {"<": operator.lt, "<=": operator.le, ">": operator.gt,
               ">=": operator.ge, "<>": operator.ne}
        domain = np.array([1, 4, 7, 9])
        keys = np.array([0, 2, 3])  # positions in domain
        matrix = comparison_matrix(keys, domain, op).to_dense()
        for i, key_pos in enumerate(keys):
            for j in range(4):
                expected = ops[op](domain[key_pos], domain[j])
                assert bool(matrix[i, j]) == expected, (op, i, j)


class TestFeasibility:
    def test_indicator_ranges_pick_int4(self):
        report = run_feasibility_test(INDICATOR_RANGE, INDICATOR_RANGE, 4096)
        assert report.feasible
        assert report.choice.precision == Precision.INT4

    def test_unbounded_division_rejected(self):
        report = run_feasibility_test(None, ValueRange(0, 1), 10)
        assert not report.feasible
        assert "unbounded" in report.reason

    def test_result_bound_reported(self):
        report = run_feasibility_test(
            ValueRange(0, 10), ValueRange(0, 10), 100
        )
        assert report.result_bound == 10 * 10 * 100


class TestOptimizer:
    def _optimizer(self, device):
        return TCUOptimizer(device, I7_7700K, run_calibration(device))

    def _geometry(self, g1=4096, g2=4096, k=32, nnz=4096):
        return OperatorGeometry(
            g1=g1, g2=g2, k=k, nnz_left=nnz, nnz_right=nnz,
            n_tuples=g1 + g2, raw_bytes=8.0 * (g1 + g2),
            result_rows=min(g1 * g2, 500_000),
        )

    def test_dense_chosen_for_dense_inputs(self, device):
        optimizer = self._optimizer(device)
        feasibility = run_feasibility_test(INDICATOR_RANGE, INDICATOR_RANGE, 32)
        decision = optimizer.decide(self._geometry(), feasibility,
                                    pairs=500_000, grouped=False)
        assert decision.use_tcu
        assert decision.plan.strategy == Strategy.DENSE

    def test_sparse_chosen_below_density_threshold(self, device):
        optimizer = self._optimizer(device)
        geometry = self._geometry(k=65536, nnz=4096)  # density 1/65536
        feasibility = run_feasibility_test(INDICATOR_RANGE, INDICATOR_RANGE,
                                           65536)
        decision = optimizer.decide(geometry, feasibility, pairs=4096,
                                    grouped=False)
        assert decision.plan.strategy == Strategy.SPARSE

    def test_blocked_chosen_beyond_device_memory(self, device):
        optimizer = self._optimizer(device)
        dim = 120_000  # ~29 GB fp16 matrices > 24 GB
        geometry = self._geometry(g1=dim, g2=dim, k=dim, nnz=dim * 64)
        feasibility = run_feasibility_test(INDICATOR_RANGE, INDICATOR_RANGE,
                                           dim)
        decision = optimizer.decide(geometry, feasibility, pairs=dim,
                                    grouped=False)
        assert decision.plan.strategy == Strategy.BLOCKED

    def test_infeasible_range_falls_back(self, device):
        optimizer = self._optimizer(device)
        feasibility = run_feasibility_test(None, None, 10)
        decision = optimizer.decide(self._geometry(), feasibility,
                                    pairs=10, grouped=False)
        assert not decision.use_tcu
        assert "range test failed" in decision.reason

    def test_compact_precision_is_cheaper(self, device):
        geometry = self._geometry(g1=8192, g2=8192, k=8192, nnz=8192)
        host = I7_7700K
        int4 = estimate_dense(device, host, geometry, Precision.INT4)
        fp16 = estimate_dense(device, host, geometry, Precision.FP16)
        assert int4.total < fp16.total

    def test_trace_records_tests(self, device):
        optimizer = self._optimizer(device)
        feasibility = run_feasibility_test(INDICATOR_RANGE, INDICATOR_RANGE, 32)
        decision = optimizer.decide(self._geometry(), feasibility,
                                    pairs=500_000, grouped=False)
        text = decision.explain()
        assert "range test" in text and "density test" in text

    def test_forced_strategy_reestimates(self, device):
        sparse_forced = TCUOptimizer(
            device, I7_7700K, run_calibration(device),
            force_strategy=Strategy.SPARSE,
        )
        feasibility = run_feasibility_test(INDICATOR_RANGE, INDICATOR_RANGE, 32)
        decision = sparse_forced.decide(self._geometry(), feasibility,
                                        pairs=500_000, grouped=False)
        assert decision.plan.strategy == Strategy.SPARSE
        baseline = self._optimizer(device).decide(
            self._geometry(), feasibility, pairs=500_000, grouped=False
        )
        assert decision.plan.total != baseline.plan.total


class TestCodegen:
    def _plan(self, device, strategy=Strategy.DENSE):
        geometry = OperatorGeometry(
            g1=64, g2=64, k=32, nnz_left=64, nnz_right=64, n_tuples=128,
            raw_bytes=1024, result_rows=100,
        )
        if strategy == Strategy.SPARSE:
            return estimate_sparse(device, I7_7700K, geometry, Precision.FP16)
        return estimate_dense(device, I7_7700K, geometry, Precision.FP16)

    def test_dense_program_uses_wmma(self, device):
        program = generate_program(self._plan(device), 64, 64, 32, "TCUJoin")
        assert "wmma_optimized_gemm" in program.source
        assert "cudaMemcpy" in program.source
        assert "nonzero_kernel" in program.source

    def test_sparse_program_uses_tile_kernel(self, device):
        program = generate_program(
            self._plan(device, Strategy.SPARSE), 64, 64, 32, "TCU-SpMM"
        )
        assert "tcu_spmm_kernel" in program.source
        assert "csr_to_tiles" in program.source

    def test_steps_enumerated(self, device):
        program = generate_program(self._plan(device), 64, 64, 32, "op",
                                   n_matmuls=2)
        assert "compute:densex2" in program.steps
        assert "result:d2h" in program.steps

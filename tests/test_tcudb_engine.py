"""TCUDB end-to-end: result equivalence with YDB, plan selection, fallback."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import UnsupportedQueryError
from repro.datasets.microbench import (
    QUERY_Q1,
    QUERY_Q3,
    QUERY_Q4,
    QUERY_Q5,
    microbench_catalog,
)
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import Strategy, TCUDBEngine, TCUDBOptions
from repro.engine.ydb import YDBEngine
from repro.storage import Catalog, Table


def sorted_rows(result):
    return sorted(map(tuple, result.require_table().rows()))


def assert_results_match(tcu_result, ydb_result, rel=1e-3):
    """Row multisets match, numeric cells within fp16 tolerance."""
    got = sorted_rows(tcu_result)
    expected = sorted_rows(ydb_result)
    assert len(got) == len(expected)
    for g_row, e_row in zip(got, expected):
        assert len(g_row) == len(e_row)
        for g, e in zip(g_row, e_row):
            if isinstance(g, str) or isinstance(e, str):
                assert g == e
            else:
                assert g == pytest.approx(e, rel=rel, abs=1e-6)


class TestMicrobenchQueries:
    @pytest.fixture
    def catalog(self):
        return microbench_catalog(700, 24, seed=3)

    def test_q1_exact_match(self, catalog):
        tcu = TCUDBEngine(catalog).execute(QUERY_Q1)
        ydb = YDBEngine(catalog).execute(QUERY_Q1)
        assert sorted_rows(tcu) == sorted_rows(ydb)
        assert not tcu.extra.get("fallback_reason")

    def test_q3_groups_match(self, catalog):
        tcu = TCUDBEngine(catalog).execute(QUERY_Q3)
        ydb = YDBEngine(catalog).execute(QUERY_Q3)
        assert_results_match(tcu, ydb)

    def test_q4_scalar_within_fp16_error(self, catalog):
        tcu = TCUDBEngine(catalog).execute(QUERY_Q4)
        ydb = YDBEngine(catalog).execute(QUERY_Q4)
        assert_results_match(tcu, ydb, rel=1e-3)

    def test_q5_nonequi_exact(self, catalog):
        tcu = TCUDBEngine(catalog).execute(QUERY_Q5)
        ydb = YDBEngine(catalog).execute(QUERY_Q5)
        assert sorted_rows(tcu) == sorted_rows(ydb)

    def test_tcudb_faster_than_ydb(self, catalog):
        for sql in (QUERY_Q1, QUERY_Q3, QUERY_Q4):
            tcu = TCUDBEngine(catalog).execute(sql)
            ydb = YDBEngine(catalog).execute(sql)
            assert tcu.seconds < ydb.seconds, sql

    def test_generated_code_attached(self, catalog):
        run = TCUDBEngine(catalog).execute(QUERY_Q1)
        program = run.extra["generated_code"]
        assert "wmma" in program.source or "tcu_spmm" in program.source

    def test_breakdown_stages(self, catalog):
        run = TCUDBEngine(catalog).execute(QUERY_Q3)
        stages = run.breakdown.stages
        assert any(s.startswith("tcu_join") for s in stages)
        assert "fill_matrices" in stages


class TestFallback:
    def test_min_max_falls_back_to_ydb(self, small_catalog):
        run = TCUDBEngine(small_catalog).execute(
            "SELECT MAX(a.val) FROM a, b WHERE a.id = b.id"
        )
        assert run.extra["executed_by"] == "YDB-fallback"
        assert run.require_table().rows() == [(20.0,)]

    def test_disable_fallback_raises(self, small_catalog):
        options = TCUDBOptions(disable_fallback=True)
        engine = TCUDBEngine(small_catalog, options=options)
        with pytest.raises(UnsupportedQueryError):
            engine.execute("SELECT MIN(a.val) FROM a, b WHERE a.id = b.id")

    def test_fallback_result_correct(self, small_catalog):
        sql = ("SELECT SUM(a.val + 1), b.val FROM a, b WHERE a.id = b.id "
               "GROUP BY b.val")
        tcu = TCUDBEngine(small_catalog).execute(sql)
        ydb = YDBEngine(small_catalog).execute(sql)
        # Additive non-product argument -> beyond TCU patterns -> fallback.
        assert tcu.extra.get("fallback_reason")
        assert sorted_rows(tcu) == sorted_rows(ydb)


class TestMultiwayJoins:
    @pytest.fixture
    def chain_catalog(self, rng):
        catalog = Catalog()
        catalog.register(Table.from_dict("a", {
            "id1": rng.integers(0, 8, 60),
            "val": rng.integers(0, 9, 60).astype(float),
        }))
        catalog.register(Table.from_dict("b", {
            "id1": rng.integers(0, 8, 50),
            "id2": rng.integers(0, 6, 50),
            "val": rng.integers(0, 9, 50).astype(float),
        }))
        catalog.register(Table.from_dict("c", {
            "id2": rng.integers(0, 6, 40),
            "val": rng.integers(0, 9, 40).astype(float),
        }))
        return catalog

    def test_q2_three_way_join(self, chain_catalog):
        sql = ("SELECT A.Val, B.Val, C.Val FROM A, B, C "
               "WHERE A.ID1 = B.ID1 AND B.ID2 = C.ID2")
        tcu = TCUDBEngine(chain_catalog).execute(sql)
        ydb = YDBEngine(chain_catalog).execute(sql)
        assert sorted_rows(tcu) == sorted_rows(ydb)

    def test_three_way_with_aggregation(self, chain_catalog):
        sql = ("SELECT SUM(A.Val * C.Val), B.Val FROM A, B, C "
               "WHERE B.ID1 = A.ID1 AND B.ID2 = C.ID2 GROUP BY B.Val")
        tcu = TCUDBEngine(chain_catalog).execute(sql)
        ydb = YDBEngine(chain_catalog).execute(sql)
        assert_results_match(tcu, ydb)


class TestPlanSelection:
    def test_dense_for_small_domains(self):
        catalog = microbench_catalog(2048, 16, seed=1)
        run = TCUDBEngine(catalog).execute(QUERY_Q1)
        assert run.extra["strategy"] == "dense"

    def test_sparse_for_large_domains(self):
        catalog = microbench_catalog(2048, 60_000, seed=1)
        run = TCUDBEngine(catalog, mode=ExecutionMode.ANALYTIC).execute(
            QUERY_Q1
        )
        assert run.extra.get("strategy") == "sparse" or (
            run.extra.get("fallback_reason") is not None
        )

    def test_indicator_joins_use_int4(self):
        catalog = microbench_catalog(2048, 16, seed=1)
        run = TCUDBEngine(catalog).execute(QUERY_Q1)
        assert run.extra["precision"] == "int4"

    def test_forced_sparse_executes_correctly(self):
        catalog = microbench_catalog(500, 12, seed=2)
        options = TCUDBOptions(force_strategy=Strategy.SPARSE)
        tcu = TCUDBEngine(catalog, options=options).execute(QUERY_Q1)
        ydb = YDBEngine(catalog).execute(QUERY_Q1)
        assert sorted_rows(tcu) == sorted_rows(ydb)
        assert tcu.extra["strategy"] == "sparse"

    def test_forced_blocked_executes_correctly(self):
        catalog = microbench_catalog(500, 12, seed=2)
        options = TCUDBOptions(force_strategy=Strategy.BLOCKED)
        tcu = TCUDBEngine(catalog, options=options).execute(QUERY_Q3)
        ydb = YDBEngine(catalog).execute(QUERY_Q3)
        assert_results_match(tcu, ydb)

    def test_require_exact_rejects_wide_values(self, rng):
        catalog = Catalog()
        catalog.register(Table.from_dict("a", {
            "id": rng.integers(0, 8, 64),
            "val": rng.integers(0, 2**30, 64).astype(float),
        }))
        catalog.register(Table.from_dict("b", {
            "id": rng.integers(0, 8, 64),
            "val": rng.integers(0, 2**30, 64).astype(float),
        }))
        options = TCUDBOptions(require_exact=True)
        run = TCUDBEngine(catalog, options=options).execute(QUERY_Q4)
        assert run.extra.get("fallback_reason")


class TestOrderAndLimit:
    def test_order_by_on_join(self):
        catalog = microbench_catalog(300, 8, seed=4)
        sql = "SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID ORDER BY A.Val DESC LIMIT 5"
        tcu = TCUDBEngine(catalog).execute(sql)
        table = tcu.require_table()
        values = [r[0] for r in table.rows()]
        assert values == sorted(values, reverse=True)
        assert table.num_rows == 5

    def test_group_results_naturally_sorted(self):
        catalog = microbench_catalog(300, 8, seed=4)
        run = TCUDBEngine(catalog).execute(QUERY_Q3)
        if not run.extra.get("fallback_reason"):
            groups = [r[1] for r in run.require_table().rows()]
            assert groups == sorted(groups)


class TestAnalyticMode:
    def test_counts_match_real(self):
        catalog = microbench_catalog(4096, 32, seed=5)
        real = TCUDBEngine(catalog, mode=ExecutionMode.REAL).execute(QUERY_Q1)
        analytic = TCUDBEngine(
            catalog, mode=ExecutionMode.ANALYTIC
        ).execute(QUERY_Q1)
        assert analytic.n_rows == real.n_rows
        assert analytic.seconds == pytest.approx(real.seconds, rel=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(4, 120),
    k=st.integers(1, 16),
    seed=st.integers(0, 99999),
)
def test_property_tcudb_join_equals_ydb(n, k, seed):
    """The TCU indicator-matmul join equals the hash join, always."""
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.register(Table.from_dict("a", {
        "id": rng.integers(0, k, n),
        "val": rng.integers(0, 100, n).astype(float),
    }))
    catalog.register(Table.from_dict("b", {
        "id": rng.integers(0, k, max(n // 2, 1)),
        "val": rng.integers(0, 100, max(n // 2, 1)).astype(float),
    }))
    sql = "SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID"
    tcu = TCUDBEngine(catalog).execute(sql)
    ydb = YDBEngine(catalog).execute(sql)
    assert sorted_rows(tcu) == sorted_rows(ydb)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(4, 100),
    k=st.integers(1, 10),
    g=st.integers(1, 6),
    seed=st.integers(0, 99999),
)
def test_property_tcudb_groupby_agg_equals_ydb(n, k, g, seed):
    """Lemma 3.1: the fused matmul group-by SUM equals the classic plan."""
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.register(Table.from_dict("a", {
        "id": rng.integers(0, k, n),
        "val": rng.integers(0, 30, n).astype(float),
    }))
    catalog.register(Table.from_dict("b", {
        "id": rng.integers(0, k, n),
        "val": rng.integers(0, g, n),
    }))
    sql = ("SELECT SUM(A.Val) s, B.Val FROM A, B WHERE A.ID = B.ID "
           "GROUP BY B.Val")
    tcu = TCUDBEngine(catalog).execute(sql)
    ydb = YDBEngine(catalog).execute(sql)
    got = {int(r[1]): r[0] for r in tcu.require_table().rows()}
    expected = {int(r[1]): r[0] for r in ydb.require_table().rows()}
    assert got.keys() == expected.keys()
    for group, total in expected.items():
        assert got[group] == pytest.approx(total, rel=1e-3)

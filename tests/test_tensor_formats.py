"""Unit + property tests for COO/CSR/tiled sparse formats."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ReproError
from repro.tensor.coo import COOMatrix
from repro.tensor.csr import CSRMatrix
from repro.tensor.tiled import (
    TILE,
    TiledMatrix,
    count_nonempty_tiles,
    estimate_nonempty_tiles,
    tile_pair_count,
)


def random_coo(rng, shape, nnz):
    rows = rng.integers(0, shape[0], nnz)
    cols = rng.integers(0, shape[1], nnz)
    vals = rng.normal(size=nnz)
    return COOMatrix(rows, cols, vals, shape)


class TestCOO:
    def test_roundtrip_dense(self, rng):
        coo = random_coo(rng, (13, 17), 40)
        dense = coo.to_dense()
        back = COOMatrix.from_dense(dense)
        assert np.allclose(back.to_dense(), dense)

    def test_sum_duplicates(self):
        coo = COOMatrix(
            np.array([0, 0, 1]), np.array([1, 1, 0]),
            np.array([2.0, 3.0, 4.0]), (2, 2),
        )
        deduped = coo.sum_duplicates()
        assert deduped.nnz == 2
        assert deduped.to_dense()[0, 1] == 5.0

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ReproError):
            COOMatrix(np.array([5]), np.array([0]), np.array([1.0]), (2, 2))

    def test_transpose(self, rng):
        coo = random_coo(rng, (6, 9), 12)
        assert np.allclose(coo.transpose().to_dense(), coo.to_dense().T)

    def test_density(self):
        coo = COOMatrix(np.array([0]), np.array([0]), np.array([1.0]), (2, 2))
        assert coo.density == 0.25


class TestCSR:
    def test_matches_scipy_construction(self, rng):
        coo = random_coo(rng, (20, 30), 80).sum_duplicates()
        ours = CSRMatrix.from_coo(coo)
        theirs = sp.coo_matrix(
            (coo.vals, (coo.rows, coo.cols)), shape=coo.shape
        ).tocsr()
        assert np.array_equal(ours.indptr, theirs.indptr)
        assert np.array_equal(ours.indices, theirs.indices)
        assert np.allclose(ours.data, theirs.data)

    def test_matvec_matches_scipy(self, rng):
        coo = random_coo(rng, (25, 15), 60)
        ours = CSRMatrix.from_coo(coo)
        x = rng.normal(size=15)
        reference = sp.csr_matrix(ours.to_dense()) @ x
        assert np.allclose(ours.matvec(x), reference)

    def test_matmul_dense(self, rng):
        csr = CSRMatrix.from_coo(random_coo(rng, (10, 8), 20))
        other = rng.normal(size=(8, 6))
        assert np.allclose(csr.matmul_dense(other), csr.to_dense() @ other)

    def test_spgemm_matches_dense_product(self, rng):
        a = CSRMatrix.from_coo(random_coo(rng, (12, 9), 25))
        b = CSRMatrix.from_coo(random_coo(rng, (9, 14), 25))
        assert np.allclose(
            a.spgemm(b).to_dense(), a.to_dense() @ b.to_dense()
        )

    def test_spgemm_flops_counts_work(self, rng):
        a = CSRMatrix.from_coo(random_coo(rng, (10, 10), 30).sum_duplicates())
        b = CSRMatrix.from_coo(random_coo(rng, (10, 10), 30).sum_duplicates())
        flops = a.spgemm_flops(b)
        # 2 flops per (a_ik, b_kj) pairing.
        expected = 2 * sum(
            int(np.sum(b.row_nnz()[a.indices[a.indptr[i]:a.indptr[i + 1]]]))
            for i in range(a.shape[0])
        )
        assert flops == expected

    def test_transpose_roundtrip(self, rng):
        csr = CSRMatrix.from_coo(random_coo(rng, (7, 11), 18))
        assert np.allclose(
            csr.transpose().transpose().to_dense(), csr.to_dense()
        )

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ReproError):
            CSRMatrix(np.array([0, 2, 1]), np.array([0]), np.array([1.0]),
                      (2, 2))

    def test_empty_matrix(self):
        csr = CSRMatrix(np.zeros(3, dtype=np.int64), np.array([], dtype=np.int64),
                        np.array([]), (2, 5))
        assert csr.nnz == 0
        assert np.allclose(csr.matvec(np.ones(5)), 0)


class TestTiled:
    def test_roundtrip(self, rng):
        dense = np.zeros((40, 50))
        dense[3, 7] = 1.5
        dense[33, 49] = -2.0
        tiled = TiledMatrix.from_dense(dense)
        assert np.allclose(tiled.to_dense(), dense)
        assert tiled.n_tiles == 2

    def test_skips_zero_tiles(self, rng):
        dense = np.zeros((64, 64))
        dense[0, 0] = 1  # only one 16x16 tile non-empty
        tiled = TiledMatrix.from_dense(dense)
        assert tiled.n_tiles == 1
        assert tiled.tile_density == 1 / 16

    def test_spmm_matches_dense(self, rng):
        a_dense = np.zeros((48, 32))
        b_dense = np.zeros((32, 64))
        a_dense[rng.integers(0, 48, 30), rng.integers(0, 32, 30)] = (
            rng.normal(size=30)
        )
        b_dense[rng.integers(0, 32, 30), rng.integers(0, 64, 30)] = (
            rng.normal(size=30)
        )
        a = TiledMatrix.from_dense(a_dense)
        b = TiledMatrix.from_dense(b_dense)
        result, pairs = a.spmm(b)
        assert np.allclose(result.to_dense(), a_dense @ b_dense)
        assert pairs == tile_pair_count(a, b)

    def test_tile_pair_count_zero_when_disjoint(self):
        a_dense = np.zeros((32, 32))
        a_dense[0, 0] = 1  # inner block 0
        b_dense = np.zeros((32, 32))
        b_dense[16, 0] = 1  # inner block 1
        a = TiledMatrix.from_dense(a_dense)
        b = TiledMatrix.from_dense(b_dense)
        assert tile_pair_count(a, b) == 0
        result, pairs = a.spmm(b)
        assert pairs == 0
        assert result.n_tiles == 0

    def test_count_nonempty_tiles_exact(self, rng):
        rows = rng.integers(0, 100, 500)
        cols = rng.integers(0, 100, 500)
        expected = len({(r // TILE, c // TILE) for r, c in zip(rows, cols)})
        assert count_nonempty_tiles(rows, cols) == expected

    def test_estimate_nonempty_tiles_bounds(self):
        estimate = estimate_nonempty_tiles((160, 160), 50)
        assert 0 < estimate <= 100  # grid is 10x10 tiles
        assert estimate <= 50  # can't exceed nnz

    def test_incompatible_shapes(self, rng):
        a = TiledMatrix.from_dense(np.ones((16, 16)))
        b = TiledMatrix.from_dense(np.ones((32, 16)))
        with pytest.raises(ReproError):
            a.spmm(b)


@settings(max_examples=40, deadline=None)
@given(
    n_rows=st.integers(1, 40),
    n_cols=st.integers(1, 40),
    seed=st.integers(0, 10_000),
)
def test_property_csr_roundtrip(n_rows, n_cols, seed):
    """CSR <-> COO <-> dense conversions are lossless."""
    rng = np.random.default_rng(seed)
    nnz = int(rng.integers(0, n_rows * n_cols // 2 + 1))
    coo = random_coo(rng, (n_rows, n_cols), nnz)
    dense = coo.to_dense()
    csr = CSRMatrix.from_coo(coo)
    assert np.allclose(csr.to_dense(), dense)
    assert np.allclose(csr.to_coo().to_dense(), dense)


@settings(max_examples=30, deadline=None)
@given(
    inner=st.integers(1, 50),
    seed=st.integers(0, 10_000),
)
def test_property_tiled_spmm_equals_dense(inner, seed):
    """Tile-level SpMM equals the dense product for arbitrary sparsity."""
    rng = np.random.default_rng(seed)
    m, n = int(rng.integers(1, 50)), int(rng.integers(1, 50))
    a_dense = np.where(rng.random((m, inner)) < 0.1,
                       rng.integers(-5, 6, (m, inner)).astype(float), 0.0)
    b_dense = np.where(rng.random((inner, n)) < 0.1,
                       rng.integers(-5, 6, (inner, n)).astype(float), 0.0)
    a = TiledMatrix.from_dense(a_dense)
    b = TiledMatrix.from_dense(b_dense)
    result, _ = a.spmm(b)
    padded = result.to_dense()
    assert np.allclose(padded[:m, :n], a_dense @ b_dense)

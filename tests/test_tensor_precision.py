"""Precision lattice, quantization and the Table-1 error structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.gpu import GPUDevice
from repro.tensor.matmul import dense_gemm, msplit_gemm
from repro.tensor.precision import (
    FP16_EXACT_INT,
    Precision,
    ValueRange,
    accumulator_exact,
    fits_exactly,
    fits_representable,
    fp16_scale_factor,
    product_magnitude_bound,
)
from repro.tensor.quantize import (
    choose_precision,
    observed_range,
    quantize,
)


class TestValueRange:
    def test_magnitude(self):
        assert ValueRange(-5, 3).magnitude == 5
        assert ValueRange(0, 7).magnitude == 7

    def test_empty_range_rejected(self):
        from repro.common.errors import PrecisionError

        with pytest.raises(PrecisionError):
            ValueRange(3, 1)

    def test_integrality(self):
        assert ValueRange(0, 10).is_integral
        assert not ValueRange(0.5, 1.0).is_integral


class TestFits:
    def test_int4_window(self):
        assert fits_exactly(ValueRange(-8, 7), Precision.INT4)
        assert not fits_exactly(ValueRange(-9, 0), Precision.INT4)
        assert not fits_exactly(ValueRange(0, 8), Precision.INT4)

    def test_int8_window(self):
        assert fits_exactly(ValueRange(-128, 127), Precision.INT8)
        assert not fits_exactly(ValueRange(0, 128), Precision.INT8)

    def test_fp16_exact_integers(self):
        assert fits_exactly(ValueRange(0, FP16_EXACT_INT), Precision.FP16)
        assert not fits_exactly(ValueRange(0, FP16_EXACT_INT + 1),
                                Precision.FP16)
        # Non-integers are never exact in fp16.
        assert not fits_exactly(ValueRange(0.0, 0.5), Precision.FP16)

    def test_fp16_representable_with_rounding(self):
        assert fits_representable(ValueRange(0, 60000), Precision.FP16)
        assert not fits_representable(ValueRange(0, 70000), Precision.FP16)


class TestBounds:
    def test_result_bound_is_m1_m2_n(self):
        # Paper Section 4.2.1: m1 * m2 * n.
        bound = product_magnitude_bound(ValueRange(-3, 2), ValueRange(0, 5), 10)
        assert bound == 3 * 5 * 10

    def test_accumulator_exactness(self):
        small = ValueRange(0, 1)
        assert accumulator_exact(small, small, 1000, Precision.INT8)
        big = ValueRange(0, 127)
        # 127*127*k > 2^31 for k > ~133k.
        assert accumulator_exact(big, big, 1000, Precision.INT8)
        assert not accumulator_exact(big, big, 10**6, Precision.INT8)

    def test_fp16_scale_factor_powers_of_two(self):
        assert fp16_scale_factor(100) == 1.0
        scale = fp16_scale_factor(2**20)
        assert scale == 2.0 ** np.ceil(np.log2(2**20 / FP16_EXACT_INT))
        # Scaling brings the magnitude into the exact window.
        assert 2**20 / scale <= FP16_EXACT_INT


class TestChoosePrecision:
    def test_indicators_get_int4(self):
        choice = choose_precision(ValueRange(0, 1), ValueRange(0, 1), 4096)
        assert choice.precision == Precision.INT4
        assert choice.exact

    def test_medium_ints_get_int8(self):
        choice = choose_precision(ValueRange(0, 100), ValueRange(0, 100), 64)
        assert choice.precision == Precision.INT8
        assert choice.exact

    def test_large_values_get_scaled_fp16(self):
        choice = choose_precision(
            ValueRange(0, 2**20), ValueRange(0, 2**20), 64
        )
        assert choice.precision == Precision.FP16
        assert not choice.exact
        assert choice.scale > 1.0

    def test_require_exact_rejects_lossy(self):
        choice = choose_precision(
            ValueRange(0, 2**20), ValueRange(0, 2**20), 64, require_exact=True
        )
        assert not choice.feasible


class TestQuantize:
    def test_fp16_cast(self):
        out = quantize(np.array([1.0, 2.5]), Precision.FP16)
        assert out.dtype == np.float16

    def test_int8_range_check(self):
        from repro.common.errors import PrecisionError

        with pytest.raises(PrecisionError):
            quantize(np.array([300.0]), Precision.INT8)

    def test_observed_range(self):
        r = observed_range(np.array([3.0, -1.0, 2.0]))
        assert (r.lo, r.hi) == (-1.0, 3.0)
        empty = observed_range(np.array([]))
        assert (empty.lo, empty.hi) == (0.0, 0.0)


class TestTable1Structure:
    """The exactness structure behind paper Table 1."""

    def test_zero_one_always_exact(self, device, rng):
        a = rng.integers(0, 2, (64, 2048)).astype(float)
        b = rng.integers(0, 2, (2048, 64)).astype(float)
        result, _ = dense_gemm(device, a, b)
        assert np.array_equal(result, a @ b)

    def test_pm127_exact_at_small_k(self, device, rng):
        a = rng.integers(-128, 128, (32, 512)).astype(float)
        b = rng.integers(-128, 128, (512, 32)).astype(float)
        result, _ = dense_gemm(device, a, b)
        assert np.array_equal(result, a @ b)

    def test_pm2pow15_small_nonzero_error(self, device, rng):
        a = rng.integers(-(2**15), 2**15, (32, 2048)).astype(float)
        b = rng.integers(-(2**15), 2**15, (2048, 32)).astype(float)
        result, _ = dense_gemm(device, a, b)
        reference = a @ b
        wmape = np.abs(result - reference).sum() / np.abs(reference).sum()
        assert 0 < wmape < 1e-3  # paper: ~0.001-0.01%

    def test_error_grows_with_value_range(self, device, rng):
        def wmape_for(limit):
            a = rng.integers(-limit, limit, (32, 1024)).astype(float)
            b = rng.integers(-limit, limit, (1024, 32)).astype(float)
            result, _ = dense_gemm(device, a, b)
            reference = a @ b
            return np.abs(result - reference).sum() / np.abs(reference).sum()

        assert wmape_for(2**7) <= wmape_for(2**15) * 1.001


class TestBlockedGemm:
    def test_matches_unblocked_for_integers(self, device, rng):
        a = rng.integers(-8, 8, (70, 90)).astype(float)
        b = rng.integers(-8, 8, (90, 50)).astype(float)
        blocked, _ = msplit_gemm(device, a, b, Precision.INT4,
                                 memory_budget=20_000)
        assert np.array_equal(blocked, (a @ b).astype(np.int64))

    def test_fp16_blocked_within_error_bound(self, device, rng):
        a = rng.integers(-(2**15), 2**15, (64, 128)).astype(float)
        b = rng.integers(-(2**15), 2**15, (128, 48)).astype(float)
        blocked, _ = msplit_gemm(device, a, b, memory_budget=50_000)
        reference = a @ b
        wmape = np.abs(blocked - reference).sum() / np.abs(reference).sum()
        assert wmape < 1e-3

    def test_blocking_plan_respects_budget(self, device):
        from repro.tensor.matmul import plan_blocked_gemm

        plan = plan_blocked_gemm(device, 4096, 4096, 4096,
                                 memory_budget=1_000_000)
        assert plan.bytes_per_stage * 3 <= 1_000_000
        assert plan.n_stages >= 8

    def test_blocked_slower_than_dense_per_flop(self, device):
        from repro.tensor.matmul import (
            dense_gemm_seconds,
            msplit_gemm_seconds,
        )

        dense = dense_gemm_seconds(device, 8192, 8192, 8192)
        blocked, _ = msplit_gemm_seconds(device, 8192, 8192, 8192,
                                         memory_budget=64 * 1024**2)
        assert blocked > dense


@settings(max_examples=30, deadline=None)
@given(
    k=st.integers(1, 256),
    seed=st.integers(0, 99999),
)
def test_property_int4_indicator_products_exact(k, seed):
    """Indicator-matrix products are bit-exact at every TCU precision —
    the invariant behind the paper's 'joins never lose accuracy' claim."""
    device = GPUDevice()
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, (17, k)).astype(float)
    b = rng.integers(0, 2, (k, 13)).astype(float)
    expected = a @ b
    for precision in (Precision.INT4, Precision.INT8, Precision.FP16):
        assert np.array_equal(device.tcu.matmul(a, b, precision), expected)

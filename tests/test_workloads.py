"""Workload integration tests: SSB 13 queries, PageRank, EM, matmul query."""

import numpy as np
import pytest

from repro.datasets import (
    beer_catalog,
    matmul_catalog,
    reduced_road_graph,
    ssb_catalog,
)
from repro.engine.base import ExecutionMode
from repro.engine.magiq import MAGiQEngine
from repro.engine.monetdb import MonetDBEngine
from repro.engine.tcudb import TCUDBEngine
from repro.engine.ydb import YDBEngine
from repro.workloads import (
    SSB_QUERIES,
    beer_blocking_query,
    mape,
    reference_matrix_product,
    reference_pagerank,
    result_as_matrix,
    run_matmul_query,
    sql_pagerank,
)


def sorted_rows(result):
    return sorted(map(tuple, result.require_table().rows()))


def rows_approx_equal(got, expected, rel=5e-3):
    """Multiset comparison tolerant to fp16 rounding in numeric cells.

    Sorting by float columns would scramble row alignment when values
    differ by rounding, so match each expected row greedily."""
    assert len(got) == len(expected)
    remaining = list(got)
    for e_row in expected:
        match_index = None
        for i, g_row in enumerate(remaining):
            if len(g_row) != len(e_row):
                continue
            ok = True
            for g, e in zip(g_row, e_row):
                if isinstance(g, str) or isinstance(e, str):
                    ok = ok and g == e
                else:
                    ok = ok and abs(g - e) <= rel * max(abs(e), 1.0)
            if ok:
                match_index = i
                break
        assert match_index is not None, f"no match for row {e_row}"
        remaining.pop(match_index)


class TestSSBAllQueries:
    @pytest.fixture(scope="class")
    def catalog(self):
        return ssb_catalog(scale_factor=1, rows_per_sf=8000, seed=17)

    @pytest.fixture(scope="class")
    def engines(self, catalog):
        return {
            "ydb": YDBEngine(catalog),
            "tcudb": TCUDBEngine(catalog),
        }

    @pytest.mark.parametrize("query_id", sorted(SSB_QUERIES))
    def test_tcudb_matches_ydb(self, engines, query_id):
        """All 13 SSB queries produce identical results on both engines."""
        ydb = engines["ydb"].execute(SSB_QUERIES[query_id])
        tcu = engines["tcudb"].execute(SSB_QUERIES[query_id])
        rows_approx_equal(sorted_rows(tcu), sorted_rows(ydb))

    @pytest.mark.parametrize("query_id", sorted(SSB_QUERIES))
    def test_tcudb_recognizes_all_13(self, engines, query_id):
        """Section 5.3: every SSB query matches a TCU pattern.  At this
        reduced data scale the optimizer may still (correctly) pick the
        conventional plan for highly selective queries — but a pattern
        failure would be a bug."""
        run = engines["tcudb"].execute(SSB_QUERIES[query_id])
        reason = run.extra.get("fallback_reason")
        if reason:
            assert reason.startswith("TCU plan"), (query_id, reason)

    def test_tcudb_wins_every_flight_head(self, engines):
        for query_id in ("Q1.1", "Q2.1", "Q4.1"):
            ydb = engines["ydb"].execute(SSB_QUERIES[query_id])
            tcu = engines["tcudb"].execute(SSB_QUERIES[query_id])
            assert tcu.seconds < ydb.seconds, query_id

    def test_monetdb_agrees_on_q11(self, catalog, engines):
        monet = MonetDBEngine(catalog).execute(SSB_QUERIES["Q1.1"])
        ydb = engines["ydb"].execute(SSB_QUERIES["Q1.1"])
        rows_approx_equal(sorted_rows(monet), sorted_rows(ydb), rel=1e-9)


class TestPageRank:
    @pytest.fixture(scope="class")
    def graph(self):
        return reduced_road_graph(512, seed=21)

    def test_sql_pagerank_matches_reference(self, graph):
        scores, _, iterations = sql_pagerank(
            lambda catalog: YDBEngine(catalog), graph, iterations=30
        )
        reference = reference_pagerank(graph, iterations=30)
        assert iterations <= 30
        assert np.allclose(scores, reference, rtol=1e-6, atol=1e-12)

    def test_tcudb_pagerank_matches_reference(self, graph):
        scores, breakdown, _ = sql_pagerank(
            lambda catalog: TCUDBEngine(catalog), graph, iterations=30
        )
        reference = reference_pagerank(graph, iterations=30)
        assert np.allclose(scores, reference, rtol=1e-3, atol=1e-9)
        assert breakdown.get("pr_q3_update") > 0

    def test_magiq_pagerank_matches_reference(self, graph):
        engine = MAGiQEngine()
        engine.load_graph(graph.src, graph.dst, graph.n_nodes)
        output = engine.pagerank(max_iterations=30, tolerance=0.0)
        reference = reference_pagerank(graph, iterations=30, tolerance=0.0)
        assert np.allclose(output.scores, reference, rtol=1e-6, atol=1e-12)

    def test_magiq_ranks_agree_with_networkx(self, graph):
        import networkx as nx

        engine = MAGiQEngine()
        engine.load_graph(graph.src, graph.dst, graph.n_nodes)
        ours = engine.pagerank(max_iterations=80).scores
        g = nx.DiGraph()
        g.add_nodes_from(range(graph.n_nodes))
        g.add_edges_from(zip(graph.src.tolist(), graph.dst.tolist()))
        theirs = nx.pagerank(g, alpha=0.85, max_iter=200)
        theirs_array = np.array([theirs[i] for i in range(graph.n_nodes)])
        # networkx redistributes dangling mass, the paper's formulation
        # does not; rank *ordering* of well-connected nodes still agrees.
        top_ours = set(np.argsort(ours)[-10:].tolist())
        top_theirs = set(np.argsort(theirs_array)[-10:].tolist())
        assert len(top_ours & top_theirs) >= 5

    def test_pr_q3_core_seconds_positive(self, graph):
        engine = MAGiQEngine()
        engine.load_graph(graph.src, graph.dst, graph.n_nodes)
        assert engine.pr_q3_core_seconds() > 0


class TestEMBlocking:
    @pytest.fixture(scope="class")
    def catalog(self):
        return beer_catalog(seed=5)

    def test_blocking_results_match(self, catalog):
        sql = beer_blocking_query("style")
        tcu = TCUDBEngine(catalog).execute(sql)
        ydb = YDBEngine(catalog).execute(sql)
        assert tcu.n_rows == ydb.n_rows
        assert sorted_rows(tcu) == sorted_rows(ydb)

    def test_low_cardinality_attribute_blocks_aggressively(self, catalog):
        abv = YDBEngine(catalog, mode=ExecutionMode.ANALYTIC).execute(
            beer_blocking_query("abv")
        )
        name = YDBEngine(catalog, mode=ExecutionMode.ANALYTIC).execute(
            beer_blocking_query("beer_name")
        )
        # Fewer distinct values -> far more candidate pairs.
        assert abv.n_rows > 10 * name.n_rows

    def test_tcudb_speedup_on_low_cardinality(self, catalog):
        sql = beer_blocking_query("abv")
        tcu = TCUDBEngine(catalog, mode=ExecutionMode.ANALYTIC).execute(sql)
        ydb = YDBEngine(catalog, mode=ExecutionMode.ANALYTIC).execute(sql)
        assert ydb.seconds / tcu.seconds > 5  # paper reports up to 33x


class TestMatmulQuery:
    def test_result_equals_numpy_product(self):
        catalog = matmul_catalog(24, seed=6)
        run = run_matmul_query(TCUDBEngine(catalog))
        got = result_as_matrix(run, 24)
        reference = reference_matrix_product(catalog, 24)
        assert np.allclose(got, reference)  # 0/1 values: exact

    def test_engines_agree(self):
        catalog = matmul_catalog(16, seed=7, value_low=0, value_high=5)
        tcu = result_as_matrix(run_matmul_query(TCUDBEngine(catalog)), 16)
        ydb = result_as_matrix(run_matmul_query(YDBEngine(catalog)), 16)
        assert np.allclose(tcu, ydb, rtol=1e-3)

    def test_mape_metric(self):
        reference = np.array([[2.0, 2.0]])
        assert mape(reference, reference) == 0.0
        assert mape(np.array([[2.2, 1.8]]), reference) == pytest.approx(0.1)

    def test_mape_zero_reference(self):
        zeros = np.zeros((2, 2))
        assert mape(zeros, zeros) == 0.0
        assert mape(np.ones((2, 2)), zeros) == float("inf")

#!/usr/bin/env python
"""Docs link checker: every relative link in README.md and docs/*.md
must resolve.

Checks, for each markdown link ``[text](target)``:

* relative file targets exist (resolved against the linking file's
  directory, repo-escaping paths rejected);
* fragment targets (``file.md#anchor`` and in-page ``#anchor``) match a
  heading in the target document, using GitHub's anchor slugification
  (lowercase, punctuation stripped, spaces to hyphens);
* external ``http(s)``/``mailto`` links are skipped (no network in CI).

Exit status: 0 when every link resolves, 1 otherwise (each failure is
printed as ``file:line: message``).  Pure standard library — run as
``python tools/check_doc_links.py`` from the repo root, or pass an
explicit repo root as the first argument.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` — target captured up to the closing paren; images
#: (``![alt](src)``) match the same way and are checked the same way.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: ATX headings, the only style these docs use.
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")

CODE_FENCE = re.compile(r"^(```|~~~)")

EXTERNAL = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub's markdown anchor for a heading: lowercase, drop
    everything but word characters/spaces/hyphens, spaces to hyphens
    (consecutive hyphens are kept, e.g. "A & B" -> "a--b")."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code spans
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """Every heading anchor a markdown file defines."""
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match:
            anchors.add(slugify(match.group(1)))
    return anchors


def iter_links(path: Path):
    """(line_number, target) for every markdown link outside code
    fences (inline code spans are stripped line-wise)."""
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = re.sub(r"`[^`]*`", "", line)
        for match in LINK.finditer(stripped):
            yield number, match.group(1)


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    anchor_cache: dict[Path, set[str]] = {}

    def anchors(target: Path) -> set[str]:
        if target not in anchor_cache:
            anchor_cache[target] = anchors_of(target)
        return anchor_cache[target]

    for number, raw in iter_links(path):
        if raw.startswith(EXTERNAL):
            continue
        where = f"{path.relative_to(root)}:{number}"
        target_part, _, fragment = raw.partition("#")
        if target_part:
            target = (path.parent / target_part).resolve()
            if not target.is_relative_to(root.resolve()):
                errors.append(f"{where}: link escapes the repo: {raw}")
                continue
            if not target.exists():
                errors.append(f"{where}: broken link: {raw}")
                continue
        else:
            target = path  # in-page "#anchor"
        if fragment and target.suffix == ".md":
            if fragment not in anchors(target):
                errors.append(
                    f"{where}: missing anchor #{fragment} in "
                    f"{target.relative_to(root)} (link: {raw})"
                )
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path.cwd()
    root = root.resolve()
    files = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    files = [f for f in files if f.exists()]
    if not files:
        print(f"no documentation files found under {root}")
        return 1
    errors = []
    checked = 0
    for path in files:
        links = list(iter_links(path))
        checked += len(links)
        errors.extend(check_file(path, root))
    for error in errors:
        print(error)
    print(f"{len(files)} files, {checked} links, {len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
